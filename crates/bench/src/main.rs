//! The `joinmi_bench` CLI: quick benchmarks plus the offline/online split.
//!
//! ```text
//! joinmi_bench [--quick] [--json] [--out PATH]      # benchmark mode
//! joinmi_bench ingest  --out repo.jmi [--quick]     # offline: build + save a repository
//! joinmi_bench query   --repo repo.jmi [--verify-in-memory]
//!                                                   # online: load + query (separate process)
//! joinmi_bench compact --repo repo.jmi [--seal]     # fold the append log; --seal drops state
//! joinmi_bench compare --baseline A.json --current B.json [--max-regression 0.25]
//!                                                   # CI bench-regression gate
//! joinmi_bench chaos   [--rows N] [--seed N] [--max-cases N]
//!                                                   # fault-injection durability sweep
//! ```
//!
//! Benchmark mode runs a compressed version of the six criterion bench
//! targets, the parallel ingest-and-query pipeline workload, the repository
//! save/load/compact workload, and the cross-query stage-cache workload, and
//! emits a machine-readable JSON (bench name → median wall nanoseconds;
//! default `BENCH_PR10.json`) that seeds the perf trajectory for future PRs. Unlike
//! the criterion benches (minutes), quick mode finishes in seconds, so CI
//! runs it on every push.
//!
//! `ingest` and `query` are the real offline → online split: `ingest` builds
//! the deterministic 32×8-table corpus ([`joinmi_bench::corpus`]), sketches
//! it, and saves the repository to disk; `query`, in a **separate process**,
//! loads that file and answers the standard ranked query. With
//! `--verify-in-memory` the query process also rebuilds the corpus from
//! scratch and asserts the persisted ranking is bit-for-bit identical — the
//! check the `persistence-roundtrip` CI job gates on.

use std::time::Instant;

use joinmi_bench::corpus;
use joinmi_bench::quickjson;
use joinmi_bench::trinomial_workload;
use joinmi_discovery::{CandidateSource, TableRepository};
use joinmi_eval::EstimatorMode;
use joinmi_serve::json::Json;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::KeyDistribution;
use joinmi_table::{augment, AugmentSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let exit = match args.first().map(String::as_str) {
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("serve-check") => cmd_serve_check(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        // A non-flag first argument that is not a known subcommand is a typo
        // (e.g. `ingets`): error out instead of silently running the full
        // benchmark suite and exiting 0 with the real work undone.
        Some(other) if !other.starts_with('-') => {
            eprintln!("unknown subcommand `{other}`");
            print_usage();
            2
        }
        _ => cmd_bench(&args),
    };
    std::process::exit(exit);
}

fn print_usage() {
    eprintln!("usage: joinmi_bench [--quick] [--json] [--out PATH]");
    eprintln!("       joinmi_bench ingest  --out REPO [--quick] [--base | --append]");
    eprintln!("       joinmi_bench ingest  --out PREFIX --shards N [--quick]");
    eprintln!("       joinmi_bench query   --repo REPO [--verify-in-memory]");
    eprintln!("       joinmi_bench compact --repo REPO [--seal]");
    eprintln!("       joinmi_bench serve-check --url HOST:PORT [--quick]");
    eprintln!("       joinmi_bench compare --baseline JSON --current JSON [--max-regression R]");
    eprintln!("       joinmi_bench chaos [--rows N] [--seed N] [--max-cases N]");
    eprintln!();
    eprintln!("  --quick   small iteration counts / workloads (seconds, not minutes)");
    eprintln!("  --json    write benchmark results to PATH (default BENCH_PR10.json)");
    eprintln!("  --base    ingest the corpus minus its append tail (the daemon's day-0 state)");
    eprintln!("  --append  load REPO, append the corpus tail rows, extend the file in place");
    eprintln!("  --seal    also drop builder state; the compacted file rejects future appends");
    eprintln!("  --shards  split the corpus contiguously into PREFIX-shard-I.jmi files");
    eprintln!("  --url     address of a running joinmi_serve daemon to check against");
    eprintln!("  chaos     fault-injection sweep: fail/corrupt every IO site of append_to");
    eprintln!("            and compact, asserting recovery to a pre- or post-op ranking");
}

/// Value of `--flag VALUE` in an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

// ---------------------------------------------------------------------------
// ingest: the offline half.
// ---------------------------------------------------------------------------

fn cmd_ingest(args: &[String]) -> i32 {
    let out = flag_value(args, "--out").unwrap_or("repo.jmi");
    let quick = args.iter().any(|a| a == "--quick");
    let base = args.iter().any(|a| a == "--base");
    let append = args.iter().any(|a| a == "--append");
    if base && append {
        eprintln!("ingest: --base and --append are mutually exclusive");
        return 2;
    }
    let rows = corpus::rows_for(quick);

    if let Some(shards) = flag_value(args, "--shards") {
        if base || append {
            eprintln!("ingest: --shards cannot combine with --base/--append");
            return 2;
        }
        let Ok(num_shards) = shards.parse::<usize>() else {
            eprintln!("ingest: --shards must be a positive number");
            return 2;
        };
        if num_shards == 0 {
            eprintln!("ingest: --shards must be a positive number");
            return 2;
        }
        return cmd_ingest_shards(out, rows, num_shards);
    }

    if append {
        return cmd_ingest_append(out, rows);
    }

    let (tables, what) = if base {
        let split = corpus::append_split(rows);
        (
            corpus::base_tables(rows),
            format!("{split} of {rows} rows each (append tail held back)"),
        )
    } else {
        (corpus::candidate_tables(rows), format!("{rows} rows each"))
    };
    println!(
        "ingest: {} tables x {} features, {what} (universe {})",
        corpus::NUM_TABLES,
        corpus::FEATURES_PER_TABLE,
        corpus::KEY_UNIVERSE
    );
    let start = Instant::now();
    let mut repo = TableRepository::new(corpus::repo_config());
    if let Err(e) = repo.add_tables(tables) {
        eprintln!("ingest: failed: {e}");
        return 1;
    }
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "ingest: {} candidate sketches built in {ingest_ms:.1} ms",
        repo.candidates().len()
    );

    let start = Instant::now();
    if let Err(e) = repo.save(out) {
        eprintln!("ingest: failed to save `{out}`: {e}");
        return 1;
    }
    let save_ms = start.elapsed().as_secs_f64() * 1e3;
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("ingest: wrote {out} ({bytes} bytes) in {save_ms:.1} ms");
    0
}

/// The serving half of the offline split: partition the corpus contiguously
/// into `num_shards` repository files (`PREFIX-shard-I.jmi`), the layout
/// `joinmi_serve` opens. Contiguous partitioning in table order is what makes
/// the daemon's merged ranking bit-for-bit equal to a single repository —
/// see `joinmi_serve::shard` for the argument.
fn cmd_ingest_shards(prefix: &str, rows: usize, num_shards: usize) -> i32 {
    println!(
        "ingest: {} tables x {} features, {rows} rows each, across {num_shards} shard(s)",
        corpus::NUM_TABLES,
        corpus::FEATURES_PER_TABLE,
    );
    for shard in 0..num_shards {
        let tables = corpus::shard_tables(rows, shard, num_shards);
        let num_tables = tables.len();
        let start = Instant::now();
        let mut repo = TableRepository::new(corpus::repo_config());
        if let Err(e) = repo.add_tables(tables) {
            eprintln!("ingest: shard {shard} failed: {e}");
            return 1;
        }
        let path = format!("{prefix}-shard-{shard}.jmi");
        if let Err(e) = repo.save(&path) {
            eprintln!("ingest: failed to save `{path}`: {e}");
            return 1;
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "ingest: shard {shard}: {num_tables} tables, {} candidates -> {path} \
             ({bytes} bytes) in {ms:.1} ms",
            repo.candidates().len(),
        );
    }
    0
}

/// The daemon half of the incremental-ingest split: load the repository file
/// written by `ingest --base`, append the corpus tail rows through the
/// `O(changed)` builder path, and extend the file in place with one append
/// group — no section of the base artifact is rewritten.
fn cmd_ingest_append(repo_path: &str, rows: usize) -> i32 {
    let start = Instant::now();
    let mut repo = match TableRepository::load(repo_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ingest --append: failed to load `{repo_path}`: {e}");
            return 1;
        }
    };
    let load_ms = start.elapsed().as_secs_f64() * 1e3;
    if !repo.is_appendable() {
        eprintln!("ingest --append: `{repo_path}` is a pre-append (v1) artifact");
        return 1;
    }

    let tail = corpus::tail_tables(rows);
    let start = Instant::now();
    let appended = match repo.append_tables(&tail) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("ingest --append: append failed: {e}");
            return 1;
        }
    };
    let append_ms = start.elapsed().as_secs_f64() * 1e3;

    let before = std::fs::metadata(repo_path).map(|m| m.len()).unwrap_or(0);
    let start = Instant::now();
    if let Err(e) = repo.append_to(repo_path) {
        eprintln!("ingest --append: failed to extend `{repo_path}`: {e}");
        return 1;
    }
    let write_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = std::fs::metadata(repo_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "ingest --append: loaded in {load_ms:.1} ms, appended {appended} rows across {} \
         tables in {append_ms:.1} ms",
        corpus::NUM_TABLES
    );
    println!(
        "ingest --append: extended {repo_path} in place in {write_ms:.1} ms \
         ({before} -> {after} bytes)"
    );
    0
}

// ---------------------------------------------------------------------------
// query: the online half (run in a separate process).
// ---------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> i32 {
    let Some(repo_path) = flag_value(args, "--repo") else {
        eprintln!("query: --repo PATH is required");
        return 2;
    };
    let verify = args.iter().any(|a| a == "--verify-in-memory");

    let start = Instant::now();
    let snapshot = match TableRepository::load_mmap_like(repo_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("query: failed to open `{repo_path}`: {e}");
            return 1;
        }
    };
    let open_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "query: opened {repo_path} in {open_ms:.2} ms ({} candidates from {} tables)",
        snapshot.candidate_count(),
        snapshot.num_tables()
    );

    // The corpus row count is recoverable from the persisted profiles, so the
    // online process needs no --quick flag to stay consistent with ingest.
    let Some(rows) = snapshot.profiles().first().map(|p| p.rows) else {
        eprintln!("query: repository holds no tables");
        return 1;
    };
    let query = corpus::standard_query(rows);

    let start = Instant::now();
    let from_disk = match query.execute(&snapshot) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("query: failed: {e}");
            return 1;
        }
    };
    let query_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "query: ranked {} candidates in {query_ms:.2} ms ({} sketches decoded lazily)",
        from_disk.len(),
        snapshot.decoded_candidates()
    );
    for r in from_disk.iter().take(5) {
        println!(
            "  {:<28} mi={:.4}  join={}",
            r.label(),
            r.mi,
            r.sketch_join_size
        );
    }

    if verify {
        let repo = corpus::build_repository(rows);
        let in_memory = match query.execute(&repo) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("query: in-memory verification build failed: {e}");
                return 1;
            }
        };
        if repo.candidates().len() != snapshot.candidate_count() {
            eprintln!(
                "persistence-roundtrip: FAILED — candidate count {} on disk vs {} in memory",
                snapshot.candidate_count(),
                repo.candidates().len()
            );
            return 1;
        }
        let disk_fp = corpus::ranking_fingerprint(&from_disk);
        let mem_fp = corpus::ranking_fingerprint(&in_memory);
        if disk_fp != mem_fp {
            eprintln!(
                "persistence-roundtrip: FAILED — persisted ranking diverges from in-memory \
                 ({} vs {} results)",
                disk_fp.len(),
                mem_fp.len()
            );
            for (d, m) in disk_fp.iter().zip(&mem_fp).take(5) {
                eprintln!("  disk {d:?} vs mem {m:?}");
            }
            return 1;
        }
        println!(
            "persistence-roundtrip: OK — {} ranked candidates bit-for-bit identical to the \
             in-memory build",
            disk_fp.len()
        );
    }
    0
}

// ---------------------------------------------------------------------------
// compact: fold a repository's append log in place.
// ---------------------------------------------------------------------------

/// Rewrites a repository file with accumulated append groups into a fresh
/// flat base (atomic write-new-then-rename; see `docs/FORMAT.md`). With
/// `--seal` the rewrite also drops builder state: the file gets smaller and
/// permanently rejects appends. Prints the compaction report as JSON so
/// scripts (and the CI persistence-roundtrip leg) can assert on it.
fn cmd_compact(args: &[String]) -> i32 {
    let Some(repo_path) = flag_value(args, "--repo") else {
        eprintln!("compact: --repo PATH is required");
        return 2;
    };
    let seal = args.iter().any(|a| a == "--seal");
    let mode = if seal {
        joinmi_discovery::CompactMode::Seal
    } else {
        joinmi_discovery::CompactMode::Preserve
    };
    let start = Instant::now();
    match TableRepository::compact(repo_path, mode) {
        Ok(report) => {
            let ms = start.elapsed().as_secs_f64() * 1e3;
            println!(
                "{{\"groups_folded\": {}, \"bytes_before\": {}, \"bytes_after\": {}, \
                 \"sealed\": {}, \"ms\": {ms:.1}}}",
                report.groups_folded, report.bytes_before, report.bytes_after, report.sealed
            );
            0
        }
        Err(e) => {
            eprintln!("compact: failed on `{repo_path}`: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// serve-check: the daemon acceptance gate.
// ---------------------------------------------------------------------------

/// Queries a running `joinmi_serve` daemon over REST and asserts its ranking
/// is bit-for-bit identical to querying the whole corpus in process through
/// one repository. This is the serving leg of the `persistence-roundtrip` CI
/// job: JSON, HTTP, sharding, the merge, and both caches sit between the
/// two rankings, and `mi_bits` pins them to exact agreement. Beyond the
/// result-cache repeat, a `top_k` variant exercises the cross-query stage
/// cache: it must re-rank (`cached: false`), replay cached estimates
/// (`stage_cache.estimate_hits` moves on `/v1/shards`), and produce the
/// bit-for-bit prefix of the cold ranking.
fn cmd_serve_check(args: &[String]) -> i32 {
    let Some(url) = flag_value(args, "--url") else {
        eprintln!("serve-check: --url HOST:PORT is required");
        return 2;
    };
    let quick = args.iter().any(|a| a == "--quick");
    let rows = corpus::rows_for(quick);

    if let Err(e) = joinmi_serve::wait_healthy(url, std::time::Duration::from_secs(10)) {
        eprintln!("serve-check: daemon at {url} never became healthy: {e}");
        return 1;
    }

    // The expected ranking: the whole corpus in one in-process repository.
    let expected = corpus::ranking_fingerprint(
        &corpus::standard_query(rows)
            .execute(&corpus::build_repository(rows))
            .expect("in-process query"),
    );

    // The same query over the wire.
    let train = corpus::query_table(rows);
    let wire_rows: Vec<String> = (0..train.num_rows())
        .map(|i| {
            let key = train.value(i, "key").expect("key column");
            let target = train.value(i, "target").expect("target column");
            format!(
                "[\"{}\", {}]",
                key.as_str().expect("string key"),
                target.as_i64().expect("int target")
            )
        })
        .collect();
    let body = format!(
        r#"{{"key_column": "key", "target_column": "target", "rows": [{}],
            "top_k": 0, "min_join_size": 10,
            "sketch_kind": "TUPSK", "sketch_size": 512, "sketch_seed": 3}}"#,
        wire_rows.join(", ")
    );

    let request = |label: &str| -> Result<Json, String> {
        let start = Instant::now();
        let (status, text) = joinmi_serve::client_request(url, "POST", "/v1/query", &body)
            .map_err(|e| format!("{label}: request failed: {e}"))?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if status != 200 {
            return Err(format!("{label}: status {status}: {text}"));
        }
        let doc = Json::parse(&text).map_err(|e| format!("{label}: bad response JSON: {e}"))?;
        println!(
            "serve-check: {label} answered in {ms:.1} ms (cached: {:?})",
            doc.get("cached")
        );
        Ok(doc)
    };
    let wire_fingerprint = |doc: &Json| -> Result<Vec<(usize, u64, usize, usize)>, String> {
        doc.get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| "response has no results array".to_owned())?
            .iter()
            .map(|row| {
                let field = |name: &str| {
                    row.get(name)
                        .and_then(Json::as_i64)
                        .map(|v| v as usize)
                        .ok_or_else(|| format!("result row missing `{name}`"))
                };
                let bits_hex = row
                    .get("mi_bits")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "result row missing `mi_bits`".to_owned())?;
                let bits = u64::from_str_radix(bits_hex.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("bad mi_bits `{bits_hex}`: {e}"))?;
                Ok((
                    field("candidate_index")?,
                    bits,
                    field("join_size")?,
                    field("key_overlap")?,
                ))
            })
            .collect()
    };

    // Stage-cache hit counter from GET /v1/shards (the shared cross-query
    // cache both report endpoints surface).
    let estimate_hits = || -> Result<i64, String> {
        let (status, text) = joinmi_serve::client_request(url, "GET", "/v1/shards", "")
            .map_err(|e| format!("GET /v1/shards failed: {e}"))?;
        if status != 200 {
            return Err(format!("GET /v1/shards: status {status}: {text}"));
        }
        let doc = Json::parse(&text).map_err(|e| format!("bad /v1/shards JSON: {e}"))?;
        doc.get("stage_cache")
            .and_then(|s| s.get("estimate_hits"))
            .and_then(Json::as_i64)
            .ok_or_else(|| "/v1/shards has no stage_cache.estimate_hits".to_owned())
    };

    let check = || -> Result<(), String> {
        let first = request("cold query")?;
        if wire_fingerprint(&first)? != expected {
            return Err(format!(
                "REST ranking diverges from the in-process ranking ({} vs {} results)",
                wire_fingerprint(&first)?.len(),
                expected.len()
            ));
        }
        // The repeat must come from the result cache, bit-identically.
        let second = request("repeat query")?;
        if second.get("cached") != Some(&Json::Bool(true)) {
            return Err("repeated query was not served from the cache".to_owned());
        }
        if wire_fingerprint(&second)? != expected {
            return Err("cached ranking diverges from the in-process ranking".to_owned());
        }
        if first.get("generation") != second.get("generation") {
            return Err("generation changed between identical queries".to_owned());
        }

        // A top_k variant misses the result cache (different wire
        // fingerprint) but hits the cross-query stage cache: every estimate
        // replays from the cache, and the truncated ranking must be the
        // bit-for-bit prefix of the full one.
        let hits_before = estimate_hits()?;
        let variant_body = body.replace(r#""top_k": 0"#, r#""top_k": 5"#);
        let start = Instant::now();
        let (status, text) = joinmi_serve::client_request(url, "POST", "/v1/query", &variant_body)
            .map_err(|e| format!("top_k variant: request failed: {e}"))?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if status != 200 {
            return Err(format!("top_k variant: status {status}: {text}"));
        }
        let third = Json::parse(&text).map_err(|e| format!("top_k variant: bad JSON: {e}"))?;
        println!(
            "serve-check: top_k variant answered in {ms:.1} ms (cached: {:?})",
            third.get("cached")
        );
        if third.get("cached") == Some(&Json::Bool(true)) {
            return Err("top_k variant unexpectedly hit the result cache".to_owned());
        }
        let truncated = wire_fingerprint(&third)?;
        if truncated != expected[..5.min(expected.len())] {
            return Err(
                "stage-cache hit ranking is not the bit-for-bit prefix of the cold ranking"
                    .to_owned(),
            );
        }
        let hits_after = estimate_hits()?;
        if hits_after <= hits_before {
            return Err(format!(
                "stage-cache estimate_hits did not move ({hits_before} -> {hits_after}); \
                 the re-ranked variant should have replayed cached estimates"
            ));
        }
        println!(
            "serve-check: stage-cache estimate_hits {hits_before} -> {hits_after} \
             across the re-ranked variant"
        );

        // An interval variant: `confidence` is part of the query identity
        // (its own result-cache entry), every result gains credible-interval
        // fields bracketing the point estimate, and the ranking stays the
        // bit-for-bit point ranking — intervals are decoration, not a
        // different order.
        let interval_body = body.replace(r#""top_k": 0"#, r#""confidence": 0.95, "top_k": 0"#);
        let start = Instant::now();
        let (status, text) = joinmi_serve::client_request(url, "POST", "/v1/query", &interval_body)
            .map_err(|e| format!("interval variant: request failed: {e}"))?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if status != 200 {
            return Err(format!("interval variant: status {status}: {text}"));
        }
        let fourth = Json::parse(&text).map_err(|e| format!("interval variant: bad JSON: {e}"))?;
        println!(
            "serve-check: interval variant answered in {ms:.1} ms (cached: {:?})",
            fourth.get("cached")
        );
        if fourth.get("cached") == Some(&Json::Bool(true)) {
            return Err("interval variant unexpectedly hit the result cache".to_owned());
        }
        if wire_fingerprint(&fourth)? != expected {
            return Err("interval ranking diverges from the point ranking".to_owned());
        }
        let rows = fourth
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| "interval response has no results array".to_owned())?;
        for row in rows {
            let field = |name: &str| {
                row.get(name)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("interval result row missing `{name}`"))
            };
            let (mi, var, lo, hi) = (
                field("mi")?,
                field("mi_var")?,
                field("ci_lo")?,
                field("ci_hi")?,
            );
            if !(var >= 0.0 && lo <= mi && mi <= hi) {
                return Err(format!(
                    "interval result violates 0 ≤ var, ci_lo ≤ mi ≤ ci_hi: \
                     mi={mi}, var={var}, ci_lo={lo}, ci_hi={hi}"
                ));
            }
        }
        println!(
            "serve-check: interval variant decorated {} results (ci_lo ≤ mi ≤ ci_hi verified)",
            rows.len()
        );

        // The early-termination / pruning counters must be surfaced.
        let (status, text) = joinmi_serve::client_request(url, "GET", "/v1/shards", "")
            .map_err(|e| format!("GET /v1/shards failed: {e}"))?;
        if status != 200 {
            return Err(format!("GET /v1/shards: status {status}: {text}"));
        }
        let doc = Json::parse(&text).map_err(|e| format!("bad /v1/shards JSON: {e}"))?;
        for counter in ["early_stopped", "pruned"] {
            if doc.get(counter).and_then(Json::as_i64).is_none() {
                return Err(format!("/v1/shards is missing the `{counter}` counter"));
            }
        }
        Ok(())
    };
    match check() {
        Ok(()) => {
            println!(
                "serve-check: OK — {} ranked candidates over REST bit-for-bit identical to \
                 the in-process query, result-cache and stage-cache hits verified",
                expected.len()
            );
            0
        }
        Err(e) => {
            eprintln!("serve-check: FAILED — {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// compare: the CI bench-regression gate.
// ---------------------------------------------------------------------------

fn cmd_compare(args: &[String]) -> i32 {
    let (Some(baseline_path), Some(current_path)) = (
        flag_value(args, "--baseline"),
        flag_value(args, "--current"),
    ) else {
        eprintln!("compare: --baseline PATH and --current PATH are required");
        return 2;
    };
    let max_regression: f64 = match flag_value(args, "--max-regression")
        .unwrap_or("0.25")
        .parse()
    {
        Ok(v) => v,
        Err(_) => {
            eprintln!("compare: --max-regression must be a number (e.g. 0.25)");
            return 2;
        }
    };

    let read_entries = |path: &str| -> Result<Vec<(String, f64)>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read `{path}`: {e}"))?;
        quickjson::parse(&text).map_err(|e| format!("parse `{path}`: {e}"))
    };
    let (baseline, current) = match (read_entries(baseline_path), read_entries(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("compare: {e}");
            return 1;
        }
    };

    let report = match quickjson::compare_quick_bench(&baseline, &current, max_regression) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compare: {e}");
            return 1;
        }
    };

    println!(
        "compare: {baseline_path} (baseline) vs {current_path} (current), threshold +{:.0}%",
        max_regression * 100.0
    );
    for c in &report.checked {
        println!(
            "  {:<40} {:>12.0} -> {:>12.0} ns  x{:.3}  {}",
            c.name,
            c.baseline,
            c.current,
            c.ratio,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for s in &report.skipped {
        println!("  skipped: {s}");
    }
    for n in &report.new_benches {
        println!("  new (no baseline): {n}");
    }
    if report.has_regression() {
        eprintln!(
            "compare: bench regression beyond +{:.0}%",
            max_regression * 100.0
        );
        return 1;
    }
    println!("compare: no regressions");
    0
}

// ---------------------------------------------------------------------------
// Benchmark mode.
// ---------------------------------------------------------------------------

fn cmd_bench(args: &[String]) -> i32 {
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_PR10.json");

    // Quick mode: smaller tables and fewer repetitions; default mode uses the
    // criterion-bench sizes for closer comparability.
    let (rows, iters) = if quick { (5_000, 7) } else { (20_000, 15) };
    let mut results: Vec<(String, f64)> = Vec::new();

    bench_targets(rows, iters, &mut results);
    pipeline_workload(quick, &mut results);
    store_workload(quick, &mut results);
    cache_workload(quick, &mut results);
    query_workload(quick, &mut results);
    calibration_smoke(&mut results);
    results.push((
        quickjson::HOST_PARALLELISM_KEY.to_owned(),
        std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64),
    ));

    let width = results.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in &results {
        println!("{name:width$}  {value:>14.0}");
    }

    if json {
        let rendered = quickjson::render(&results);
        std::fs::write(out_path, rendered).expect("write bench JSON");
        println!("\nwrote {out_path}");
    }
    0
}

/// Median wall time of `iters` runs of `f`, in nanoseconds.
fn median_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

/// Compressed versions of the six criterion bench targets.
fn bench_targets(rows: usize, iters: usize, results: &mut Vec<(String, f64)>) {
    let workload = trinomial_workload(rows, KeyDistribution::KeyInd, 7);
    let pair = &workload.pair;
    let cfg = SketchConfig::new(256, 7);

    // sketch_build: left-side TUPSK construction.
    results.push((
        format!("sketch_build/tupsk_left_{rows}_rows"),
        median_ns(iters, || {
            SketchKind::Tupsk
                .build_left(&pair.train, &pair.key_column, &pair.target_column, &cfg)
                .expect("sketch build")
                .len()
        }),
    ));

    let left = SketchKind::Tupsk
        .build_left(&pair.train, &pair.key_column, &pair.target_column, &cfg)
        .expect("left sketch");
    let right = SketchKind::Tupsk
        .build_right(
            &pair.cand,
            &pair.key_column,
            &pair.feature_column,
            pair.aggregation,
            &cfg,
        )
        .expect("right sketch");

    // sketch_join: probe + pair recovery only.
    results.push((
        "sketch_join/tupsk_n256".to_owned(),
        median_ns(iters * 4, || left.join(&right).len()),
    ));

    // estimators: MLE on the recovered sample.
    let joined = left.join(&right);
    results.push((
        "estimators/mle_on_sketch_join".to_owned(),
        median_ns(iters, || {
            EstimatorMode::Mle.estimate(joined.xs(), joined.ys(), 0)
        }),
    ));

    // full_vs_sketch: the §V-D head-to-head, both sides.
    let spec = AugmentSpec::new(
        pair.key_column.clone(),
        pair.target_column.clone(),
        pair.key_column.clone(),
        pair.feature_column.clone(),
        pair.aggregation,
    );
    results.push((
        format!("full_vs_sketch/full_join_and_estimate_{rows}"),
        median_ns(iters.min(5), || {
            let joined = augment(&pair.train, &pair.cand, &spec).expect("full join");
            let feature = spec.feature_column_name();
            let xs: Vec<_> = (0..joined.table.num_rows())
                .map(|i| joined.table.value(i, &feature).expect("column"))
                .collect();
            let ys: Vec<_> = (0..joined.table.num_rows())
                .map(|i| joined.table.value(i, &pair.target_column).expect("column"))
                .collect();
            EstimatorMode::Mle.estimate(&xs, &ys, 0)
        }),
    ));
    results.push((
        format!("full_vs_sketch/sketch_join_and_estimate_{rows}"),
        median_ns(iters, || {
            let joined = left.join(&right);
            EstimatorMode::Mle.estimate(joined.xs(), joined.ys(), 0)
        }),
    ));

    // table_ops: the materialized augmentation join alone.
    results.push((
        format!("table_ops/augment_{rows}"),
        median_ns(iters.min(5), || {
            augment(&pair.train, &pair.cand, &spec)
                .expect("full join")
                .matched_rows
        }),
    ));

    // ablation: sketch size sweep (build + join + estimate at n = 1024).
    let big_cfg = SketchConfig::new(1024, 7);
    results.push((
        "ablation/tupsk_n1024_build_join_estimate".to_owned(),
        median_ns(iters.min(5), || {
            let l = SketchKind::Tupsk
                .build_left(&pair.train, &pair.key_column, &pair.target_column, &big_cfg)
                .expect("left");
            let r = SketchKind::Tupsk
                .build_right(
                    &pair.cand,
                    &pair.key_column,
                    &pair.feature_column,
                    pair.aggregation,
                    &big_cfg,
                )
                .expect("right");
            let joined = l.join(&r);
            EstimatorMode::Mle.estimate(joined.xs(), joined.ys(), 0)
        }),
    ));

    knn_kernel_targets(iters, results);
}

/// The PR 4 kernel-engine targets: the blocked Chebyshev k-NN kernel and the
/// KSG estimator on a correlated pair at n = 4096 (the regime where the
/// window expansion does real work), plus the pre-refactor scalar kernel so
/// every bench run records the blocked-vs-scalar speedup on its own host.
fn knn_kernel_targets(iters: usize, results: &mut Vec<(String, f64)>) {
    let (xs, ys) = joinmi_bench::knn_correlated_pair(4096);

    let scalar_ns = median_ns(iters, || {
        joinmi_estimators::knn::kth_nn_distances_chebyshev_scalar(&xs, &ys, 3)
    });
    let blocked_ns = median_ns(iters, || {
        joinmi_estimators::knn::kth_nn_distances_chebyshev(&xs, &ys, 3)
    });
    let ksg_ns = median_ns(iters, || {
        joinmi_estimators::ksg_mi(&xs, &ys, 3).expect("ksg estimate")
    });

    results.push(("knn/chebyshev_n4096".to_owned(), blocked_ns));
    results.push(("knn/chebyshev_n4096_scalar".to_owned(), scalar_ns));
    results.push((
        "knn/blocked_speedup_vs_scalar".to_owned(),
        if blocked_ns > 0.0 {
            scalar_ns / blocked_ns
        } else {
            0.0
        },
    ));
    results.push(("estimators/ksg_n4096".to_owned(), ksg_ns));
}

/// The acceptance workload: ingest 32 tables × 8 feature columns, then run
/// one ranked query — at 1 thread and at 4 — asserting identical results.
fn pipeline_workload(quick: bool, results: &mut Vec<(String, f64)>) {
    let reps = if quick { 3 } else { 5 };
    let rows = corpus::rows_for(quick);
    let tables = corpus::candidate_tables(rows);
    let query = corpus::standard_query(rows);

    let run_once = |tables: Vec<joinmi_table::Table>| {
        let mut repo = TableRepository::new(corpus::repo_config());
        let added = repo.add_tables(tables).expect("ingest");
        let ranking = query.execute(&repo).expect("query");
        (added, repo, ranking)
    };
    // Clone the input tables *outside* the timed region: the memcpy is the
    // same at any thread count and would dilute the measured speedup.
    let timed_median = |reps: usize| {
        let mut samples: Vec<u128> = (0..reps.max(1))
            .map(|_| {
                let fresh = tables.clone();
                let start = Instant::now();
                std::hint::black_box(run_once(fresh));
                start.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2] as f64
    };

    let (added, repo_seq, ranking_seq) = joinmi_par::with_threads(1, || run_once(tables.clone()));
    assert_eq!(
        added,
        corpus::NUM_TABLES * corpus::FEATURES_PER_TABLE,
        "expected {} candidate pairs per table",
        corpus::FEATURES_PER_TABLE
    );
    let t1_ns = joinmi_par::with_threads(1, || timed_median(reps));

    let (_, repo_par, ranking_par) = joinmi_par::with_threads(4, || run_once(tables.clone()));
    let t4_ns = joinmi_par::with_threads(4, || timed_median(reps));

    // Bit-for-bit identity between the sequential and 4-thread pipelines.
    let identical = repo_seq.candidates().len() == repo_par.candidates().len()
        && repo_seq
            .candidates()
            .iter()
            .zip(repo_par.candidates())
            .all(|(a, b)| a.label() == b.label() && a.sketch.rows() == b.sketch.rows())
        && corpus::ranking_fingerprint(&ranking_seq) == corpus::ranking_fingerprint(&ranking_par);
    assert!(identical, "parallel pipeline diverged from sequential");

    results.push(("pipeline/ingest32x8_query/threads=1".to_owned(), t1_ns));
    results.push(("pipeline/ingest32x8_query/threads=4".to_owned(), t4_ns));
    results.push((
        "pipeline/speedup_t4_over_t1".to_owned(),
        if t4_ns > 0.0 { t1_ns / t4_ns } else { 0.0 },
    ));
    results.push((
        "pipeline/parallel_identical".to_owned(),
        f64::from(u8::from(identical)),
    ));
}

/// The persistence workload: save the 32×8 repository, load it back (eager
/// and mmap-like), and compare loading against re-ingesting the same corpus.
///
/// `store/load_speedup_vs_ingest` is the headline number of the offline →
/// online split: how much faster a restart answers its first query when the
/// sketches come from disk instead of being rebuilt from raw tables.
fn store_workload(quick: bool, results: &mut Vec<(String, f64)>) {
    let reps = if quick { 3 } else { 5 };
    let rows = corpus::rows_for(quick);
    let tables = corpus::candidate_tables(rows);
    let query = corpus::standard_query(rows);

    // Re-ingest: sketch the whole corpus from raw tables (no query).
    let reingest_ns = median_ns(reps, || {
        let mut repo = TableRepository::new(corpus::repo_config());
        repo.add_tables(tables.clone()).expect("ingest").to_string()
    });

    let mut repo = TableRepository::new(corpus::repo_config());
    repo.add_tables(tables.clone()).expect("ingest");
    let in_memory_fp = corpus::ranking_fingerprint(&query.execute(&repo).expect("query"));

    let path = std::env::temp_dir().join(format!("joinmi-bench-{}.jmi", std::process::id()));
    let save_ns = median_ns(reps, || repo.save(&path).expect("save repo"));
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let load_ns = median_ns(reps, || TableRepository::load(&path).expect("load repo"));
    let open_ns = median_ns(reps, || {
        TableRepository::load_mmap_like(&path)
            .expect("open repo")
            .candidate_count()
    });

    // Guard: the loaded repository must answer the standard query
    // bit-identically to the in-memory build.
    let loaded = TableRepository::load(&path).expect("load repo");
    let loaded_fp = corpus::ranking_fingerprint(&query.execute(&loaded).expect("query"));
    assert_eq!(in_memory_fp, loaded_fp, "persisted repository diverged");
    let _ = std::fs::remove_file(&path);

    // Incremental ingest: appending the 1% corpus tail to the base
    // repository via the O(changed) builder path, versus re-sketching the
    // whole corpus from raw tables. Each rep clones the pre-built base
    // repository outside the timed region (append mutates it).
    let tail = corpus::tail_tables(rows);
    let mut base_repo = TableRepository::new(corpus::repo_config());
    base_repo
        .add_tables(corpus::base_tables(rows))
        .expect("base ingest");
    // The daemon flow appends to a repository loaded from disk (sketch-only,
    // builder state restored), not to the in-memory original.
    let base_path =
        std::env::temp_dir().join(format!("joinmi-bench-base-{}.jmi", std::process::id()));
    base_repo.save(&base_path).expect("save base repo");
    let loaded_base = TableRepository::load(&base_path).expect("load base repo");
    let _ = std::fs::remove_file(&base_path);
    // Clone the loaded repository *outside* the timed region (append mutates
    // it; the clone is setup cost, not part of the daemon's append work).
    let append_ns = {
        let mut samples: Vec<u128> = (0..reps.max(1))
            .map(|_| {
                let mut fresh = loaded_base.clone();
                let start = Instant::now();
                std::hint::black_box(fresh.append_tables(&tail).expect("append tail"));
                start.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2] as f64
    };

    // Guard: append-then-query must be bit-for-bit identical to the one-shot
    // ingest of the full corpus.
    let mut appended_repo = loaded_base.clone();
    appended_repo.append_tables(&tail).expect("append tail");
    let appended_fp = corpus::ranking_fingerprint(&query.execute(&appended_repo).expect("query"));
    assert_eq!(
        in_memory_fp, appended_fp,
        "incremental append diverged from one-shot ingest"
    );

    // Compaction: an on-disk file carrying the corpus-tail append group,
    // folded into a fresh flat base. `store/compacted_load_speedup` — the
    // eager-load median of the appended file over that of its
    // compacted+sealed rewrite — is the gated headline: what a restart gains
    // when the append log was folded before reopening.
    let appended_path =
        std::env::temp_dir().join(format!("joinmi-bench-appended-{}.jmi", std::process::id()));
    base_repo.save(&appended_path).expect("save base repo");
    {
        let mut extender = TableRepository::load(&appended_path).expect("load for append");
        extender.append_tables(&tail).expect("append tail");
        extender.append_to(&appended_path).expect("extend file");
    }
    let appended_file = std::fs::read(&appended_path).expect("read appended file");
    let load_appended_ns = median_ns(reps, || {
        TableRepository::load(&appended_path).expect("load appended repo")
    });

    // compact_repo: compaction mutates the file, so each rep stages a fresh
    // copy outside the timed region.
    let scratch_path =
        std::env::temp_dir().join(format!("joinmi-bench-compact-{}.jmi", std::process::id()));
    let compact_ns = {
        let mut samples: Vec<u128> = (0..reps.max(1))
            .map(|_| {
                std::fs::write(&scratch_path, &appended_file).expect("stage scratch copy");
                let start = Instant::now();
                std::hint::black_box(
                    TableRepository::compact(
                        &scratch_path,
                        joinmi_discovery::CompactMode::Preserve,
                    )
                    .expect("compact"),
                );
                start.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2] as f64
    };

    // The sealed rewrite: the smallest on-disk form a repository can take.
    std::fs::write(&scratch_path, &appended_file).expect("stage scratch copy");
    let report = TableRepository::compact(&scratch_path, joinmi_discovery::CompactMode::Seal)
        .expect("seal compact");
    assert!(
        report.sealed && report.groups_folded > 0,
        "seal compaction must fold the staged append group"
    );
    let load_compacted_ns = median_ns(reps, || {
        TableRepository::load(&scratch_path).expect("load compacted repo")
    });

    // Guard: the sealed, compacted artifact still ranks bit-for-bit
    // identically to the in-memory build.
    let compacted = TableRepository::load(&scratch_path).expect("load compacted repo");
    let compacted_fp = corpus::ranking_fingerprint(&query.execute(&compacted).expect("query"));
    assert_eq!(in_memory_fp, compacted_fp, "compaction changed the ranking");
    let _ = std::fs::remove_file(&appended_path);
    let _ = std::fs::remove_file(&scratch_path);

    results.push(("store/save_repo".to_owned(), save_ns));
    results.push(("store/load_repo".to_owned(), load_ns));
    results.push(("store/open_mmap_like".to_owned(), open_ns));
    results.push(("store/reingest32x8".to_owned(), reingest_ns));
    results.push((
        "store/load_speedup_vs_ingest".to_owned(),
        if load_ns > 0.0 {
            reingest_ns / load_ns
        } else {
            0.0
        },
    ));
    results.push(("store/append_tail_1pct".to_owned(), append_ns));
    results.push((
        "store/append_vs_reingest".to_owned(),
        if append_ns > 0.0 {
            reingest_ns / append_ns
        } else {
            0.0
        },
    ));
    results.push(("store/load_appended".to_owned(), load_appended_ns));
    results.push(("store/compact_repo".to_owned(), compact_ns));
    results.push(("store/load_compacted".to_owned(), load_compacted_ns));
    results.push((
        "store/compacted_load_speedup".to_owned(),
        if load_compacted_ns > 0.0 {
            load_appended_ns / load_compacted_ns
        } else {
            0.0
        },
    ));
    results.push(("store/file_bytes".to_owned(), file_bytes as f64));
}

/// The PR 7 cross-query stage-cache workload: the standard ranked query cold
/// (no cache), warm at the estimate level (every candidate served from the
/// cached MI estimate, estimator never runs), and warm at the join level
/// (estimates cleared outside the timed region each rep, so the run
/// re-estimates from cached joined sketches).
///
/// `cache/estimate_hit_speedup` and `cache/join_hit_speedup` are the gated
/// headline numbers; every warm run is asserted bit-for-bit identical to the
/// cold ranking, so a cache that got faster by getting *wrong* fails here
/// before it ever reaches CI's identity gates.
fn cache_workload(quick: bool, results: &mut Vec<(String, f64)>) {
    let reps = if quick { 5 } else { 9 };
    let rows = corpus::rows_for(quick);
    let repo = corpus::build_repository(rows);
    let query = corpus::standard_query(rows);
    let mut ws = joinmi_estimators::EstimatorWorkspace::new();

    let cold_fp = corpus::ranking_fingerprint(&query.execute_in(&repo, &mut ws).expect("query"));
    let cold_ns = median_ns(reps, || {
        query.execute_in(&repo, &mut ws).expect("query").len()
    });

    let cache =
        joinmi_discovery::QueryStageCache::new(joinmi_discovery::StageCacheConfig::default());
    let scope = cache.scope(0);
    // Warm the cache once (populates both levels), checking identity.
    let warm = query
        .execute_in_cached(&repo, &mut ws, Some(&scope))
        .expect("warming query");
    assert_eq!(
        cold_fp,
        corpus::ranking_fingerprint(&warm),
        "cached ranking diverged from cold"
    );

    // Estimate-level hits: the estimator and the sketch join are both skipped.
    let estimate_hit_ns = median_ns(reps, || {
        query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .expect("warm query")
            .len()
    });
    let warm_fp = corpus::ranking_fingerprint(
        &query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .expect("warm query"),
    );
    assert_eq!(cold_fp, warm_fp, "estimate-hit ranking diverged from cold");

    // Join-level hits: clearing the estimate level *outside* the timed region
    // forces each rep to re-run the estimator on cached joined sketches.
    let join_hit_ns = {
        let mut samples: Vec<u128> = (0..reps.max(1))
            .map(|_| {
                cache.clear_estimates();
                let start = Instant::now();
                std::hint::black_box(
                    query
                        .execute_in_cached(&repo, &mut ws, Some(&scope))
                        .expect("join-warm query")
                        .len(),
                );
                start.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2] as f64
    };
    cache.clear_estimates();
    let join_warm_fp = corpus::ranking_fingerprint(
        &query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .expect("join-warm query"),
    );
    assert_eq!(cold_fp, join_warm_fp, "join-hit ranking diverged from cold");
    let stats = cache.stats();
    assert!(
        stats.estimate_hits > 0 && stats.join_hits > 0,
        "cache workload never hit the cache (stats: {stats:?})"
    );

    results.push(("cache/cold_execute".to_owned(), cold_ns));
    results.push(("cache/estimate_hit".to_owned(), estimate_hit_ns));
    results.push(("cache/join_hit".to_owned(), join_hit_ns));
    results.push((
        "cache/estimate_hit_speedup".to_owned(),
        if estimate_hit_ns > 0.0 {
            cold_ns / estimate_hit_ns
        } else {
            0.0
        },
    ));
    results.push((
        "cache/join_hit_speedup".to_owned(),
        if join_hit_ns > 0.0 {
            cold_ns / join_hit_ns
        } else {
            0.0
        },
    ));
}

/// The PR 10 uncertainty-ranking workload: interval top-k with early
/// termination vs. exhaustive interval scoring over the skewed corpus
/// (strong tie group + long weak tail — see [`corpus::skewed_tables`]).
/// Verifies before timing that the early-terminating top-k is bit-for-bit
/// the truncated exhaustive ranking and that termination actually fired.
fn query_workload(quick: bool, results: &mut Vec<(String, f64)>) {
    let reps = if quick { 5 } else { 9 };
    let weak = corpus::skewed_weak_for(quick);
    let mut repo = TableRepository::new(corpus::skewed_config());
    repo.add_tables(corpus::skewed_tables(weak))
        .expect("ingest");

    let exhaustive = corpus::skewed_query().with_top_k(0);
    let topk = corpus::skewed_query().with_top_k(3);

    let (mut ex, _) = exhaustive
        .execute_cached_stats(&repo, None)
        .expect("exhaustive interval query");
    let (tk, stats) = topk
        .execute_cached_stats(&repo, None)
        .expect("top-k interval query");
    assert!(
        stats.early_stopped > 0,
        "interval top-k never early-terminated (stats: {stats:?})"
    );
    ex.truncate(tk.len());
    assert_eq!(
        corpus::ranking_fingerprint(&ex),
        corpus::ranking_fingerprint(&tk),
        "early-terminated top-k diverged from the exhaustive ranking"
    );

    let exhaustive_ns = median_ns(reps, || {
        exhaustive.execute(&repo).expect("exhaustive").len()
    });
    let early_ns = median_ns(reps, || topk.execute(&repo).expect("top-k").len());

    results.push(("query/exhaustive_interval".to_owned(), exhaustive_ns));
    results.push(("query/early_term_topk".to_owned(), early_ns));
    results.push((
        "query/early_term_speedup".to_owned(),
        if early_ns > 0.0 {
            exhaustive_ns / early_ns
        } else {
            0.0
        },
    ));
}

/// Calibration smoke: the credible intervals that drive early termination
/// must stay calibrated. Runs a small sweep of the eval crate's calibration
/// experiment and records the worst per-cell coverage (percent) in the JSON;
/// fails loudly if any cell drops below half of nominal.
fn calibration_smoke(results: &mut Vec<(String, f64)>) {
    use joinmi_eval::experiments::calibration;

    let cfg = calibration::Config {
        trials: 8,
        corpus_rows: vec![1_000],
        null_fractions: vec![0.0, 0.3],
        reference_rows: 8_000,
        level: 0.9,
        seed: 42,
    };
    let series = calibration::run(&cfg);
    let mut worst = 1.0f64;
    for ((rows, nf), trials) in &series {
        assert!(
            !trials.is_empty(),
            "calibration cell {rows}/{nf} produced no trials"
        );
        let coverage = trials.iter().filter(|t| t.covered()).count() as f64 / trials.len() as f64;
        assert!(
            coverage >= cfg.level / 2.0,
            "calibration collapsed at {rows} rows / {nf}‰ NULLs: coverage {coverage:.2} \
             under nominal {}",
            cfg.level
        );
        worst = worst.min(coverage);
    }
    results.push((
        "calibration/worst_cell_coverage_pct".to_owned(),
        worst * 100.0,
    ));
}

// ---------------------------------------------------------------------------
// chaos: the deterministic fault-injection sweep.
// ---------------------------------------------------------------------------

/// Ranking fingerprint type shared by the chaos legs.
type Fp = Vec<(usize, u64, usize, usize)>;

/// The mutation under chaos: extend in place, or fold the append log.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ChaosOp {
    Append,
    Compact,
}

impl ChaosOp {
    fn name(self) -> &'static str {
        match self {
            ChaosOp::Append => "append_to",
            ChaosOp::Compact => "compact",
        }
    }
}

/// Sweeps every injectable IO site of `append_to` and `compact` — failing
/// the Nth create/write/fsync/rename/set-len/read, and silently flipping a
/// bit of the Nth written or read buffer — and asserts the durability
/// contract from `docs/FORMAT.md`: after the fault, reopening the file
/// (running `recover_truncated` first if the plain open refuses it) yields a
/// ranking bit-for-bit equal to either the pre-operation or post-operation
/// state. Never a hybrid, never silent corruption.
///
/// The sweep is deterministic: an observe pass counts the IO sites each
/// operation performs, then every site (sampled evenly above `--max-cases`
/// per site class, with the drop logged) is failed in its own run against a
/// pristine copy. `--seed` varies only which bit the flip legs corrupt.
/// This is the chaos leg of the `persistence-roundtrip` CI job.
fn cmd_chaos(args: &[String]) -> i32 {
    use joinmi_store::fault::{self, FaultAction, FaultKind, FaultPlan, Trigger};

    let rows: usize = match flag_value(args, "--rows").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(400),
        Err(_) => {
            eprintln!("chaos: --rows must be a number");
            return 2;
        }
    };
    let seed: u64 = match flag_value(args, "--seed").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(0xC4A0_5EED),
        Err(_) => {
            eprintln!("chaos: --seed must be a number");
            return 2;
        }
    };
    let max_cases: usize = match flag_value(args, "--max-cases").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(6).max(2),
        Err(_) => {
            eprintln!("chaos: --max-cases must be a number");
            return 2;
        }
    };

    let dir = std::env::temp_dir().join(format!("joinmi-chaos-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("chaos: cannot create workspace {}: {e}", dir.display());
        return 1;
    }
    let base_path = dir.join("base.jmi");
    let appended_path = dir.join("appended.jmi");
    let work_path = dir.join("work.jmi");
    let query = corpus::standard_query(rows);
    let tail = corpus::tail_tables(rows);

    let fingerprint_of = |path: &std::path::Path| -> Result<Fp, String> {
        let snapshot = TableRepository::load_mmap_like(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let ranking = query
            .execute(&snapshot)
            .map_err(|e| format!("query {}: {e}", path.display()))?;
        Ok(corpus::ranking_fingerprint(&ranking))
    };

    // Pristine pre/post states for both operations, built with no faults
    // armed. Compaction preserves the ranking, so its pre and post
    // fingerprints coincide — the sweep still checks membership so a hybrid
    // (partially folded) file cannot hide behind that coincidence.
    let mut base = TableRepository::new(corpus::repo_config());
    if let Err(e) = base.add_tables(corpus::base_tables(rows)) {
        eprintln!("chaos: building the base state failed: {e}");
        return 1;
    }
    if let Err(e) = base.save(&base_path) {
        eprintln!("chaos: saving the base state failed: {e}");
        return 1;
    }
    let fp_base = match fingerprint_of(&base_path) {
        Ok(fp) => fp,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 1;
        }
    };
    if let Err(e) = std::fs::copy(&base_path, &appended_path) {
        eprintln!("chaos: staging the appended state failed: {e}");
        return 1;
    }
    let append_once = |path: &std::path::Path| -> Result<(), String> {
        let mut repo = TableRepository::load(path).map_err(|e| e.to_string())?;
        repo.append_tables(&tail).map_err(|e| e.to_string())?;
        repo.append_to(path).map_err(|e| e.to_string())
    };
    if let Err(e) = append_once(&appended_path) {
        eprintln!("chaos: building the appended state failed: {e}");
        return 1;
    }
    let fp_appended = match fingerprint_of(&appended_path) {
        Ok(fp) => fp,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 1;
        }
    };
    println!(
        "chaos: corpus {rows} rows/table, base {} results, appended {} results, seed {seed:#x}",
        fp_base.len(),
        fp_appended.len()
    );

    // One faulted run: copy the pristine pre-state, do the unfaulted setup
    // (loading must not eat the injected fault), arm, mutate, disarm.
    let run_op = |op: ChaosOp, plan: FaultPlan| -> (Result<(), String>, fault::FaultStats) {
        let _ = std::fs::remove_file(&work_path);
        match op {
            ChaosOp::Append => {
                std::fs::copy(&base_path, &work_path).expect("staging the work file");
                let mut repo = TableRepository::load(&work_path).expect("pristine base must load");
                repo.append_tables(&tail).expect("in-memory append");
                let guard = fault::arm(plan);
                let result = repo.append_to(&work_path).map_err(|e| e.to_string());
                (result, guard.stats())
            }
            ChaosOp::Compact => {
                std::fs::copy(&appended_path, &work_path).expect("staging the work file");
                let guard = fault::arm(plan);
                let result =
                    TableRepository::compact(&work_path, joinmi_discovery::CompactMode::Preserve)
                        .map(|_| ())
                        .map_err(|e| e.to_string());
                (result, guard.stats())
            }
        }
    };

    // The invariant: the file reopens — directly, or after one
    // `recover_truncated` pass — to exactly the pre- or post-op ranking.
    let recovered_fingerprint = |op: ChaosOp| -> Result<Fp, String> {
        if let Ok(fp) = fingerprint_of(&work_path) {
            return Ok(fp);
        }
        TableRepository::recover_truncated(&work_path)
            .map_err(|e| format!("{}: recover_truncated failed: {e}", op.name()))?;
        fingerprint_of(&work_path)
            .map_err(|e| format!("{}: reopen after recovery failed: {e}", op.name()))
    };

    let sample = |count: u64| -> Vec<u64> {
        if count as usize <= max_cases {
            (0..count).collect()
        } else {
            let mut picked: Vec<u64> = (0..max_cases)
                .map(|i| (i as u64) * (count - 1) / (max_cases as u64 - 1))
                .collect();
            picked.dedup();
            picked
        }
    };

    let mut cases = 0usize;
    let mut failures = 0usize;
    for op in [ChaosOp::Append, ChaosOp::Compact] {
        let (pre, post) = match op {
            ChaosOp::Append => (&fp_base, &fp_appended),
            ChaosOp::Compact => (&fp_appended, &fp_appended),
        };

        // Observe pass: count the operation's IO sites with an empty plan.
        let (result, stats) = run_op(op, FaultPlan::observe());
        if let Err(e) = result {
            eprintln!("chaos: {} observe pass failed: {e}", op.name());
            return 1;
        }
        let kinds = [
            FaultKind::Create,
            FaultKind::Write,
            FaultKind::Fsync,
            FaultKind::Rename,
            FaultKind::SetLen,
            FaultKind::Read,
        ];
        if stats.count(FaultKind::Write) == 0 || stats.count(FaultKind::Fsync) == 0 {
            eprintln!(
                "chaos: {} observe pass saw no writes or no fsyncs — the fault seam is \
                 not wired through this path",
                op.name()
            );
            return 1;
        }

        for kind in kinds {
            let count = stats.count(kind);
            if count == 0 {
                continue;
            }
            // Error legs for every kind; silent-corruption legs where the
            // operation carries a buffer to flip.
            let mut legs: Vec<(&str, FaultAction)> = vec![("fail", FaultAction::Error)];
            if matches!(kind, FaultKind::Write | FaultKind::Read) {
                legs.push(("flip", FaultAction::FlipBit(0)));
            }
            for (label, action) in legs {
                let picked = sample(count);
                if (picked.len() as u64) < count {
                    println!(
                        "chaos: {} {kind:?}/{label}: {count} sites, sampling {} \
                         (cap --max-cases {max_cases})",
                        op.name(),
                        picked.len()
                    );
                }
                for nth in picked {
                    let action = match action {
                        // Which bit the flip corrupts is the only seeded
                        // choice: everything else in the sweep is exhaustive.
                        FaultAction::FlipBit(_) => FaultAction::FlipBit(
                            joinmi_hash::SplitMix64::mix(seed ^ nth.wrapping_mul(0x9E37_79B9)),
                        ),
                        other => other,
                    };
                    let plan = FaultPlan::observe().with(Trigger {
                        kind,
                        name: None,
                        nth,
                        action,
                    });
                    let (result, _) = run_op(op, plan);
                    cases += 1;
                    if matches!(action, FaultAction::Error) && result.is_ok() {
                        eprintln!(
                            "chaos: FAIL {} {kind:?}/fail #{nth}: the injected error was \
                             swallowed (operation reported success)",
                            op.name()
                        );
                        failures += 1;
                        continue;
                    }
                    match recovered_fingerprint(op) {
                        Ok(fp) if &fp == pre || &fp == post => {}
                        Ok(fp) => {
                            eprintln!(
                                "chaos: FAIL {} {kind:?}/{label} #{nth}: reopened to a hybrid \
                                 ranking ({} results; pre {} / post {})",
                                op.name(),
                                fp.len(),
                                pre.len(),
                                post.len()
                            );
                            failures += 1;
                        }
                        Err(e) => {
                            eprintln!("chaos: FAIL {} {kind:?}/{label} #{nth}: {e}", op.name());
                            failures += 1;
                        }
                    }
                }
            }
        }
        println!("chaos: {} sweep complete", op.name());
    }

    let _ = std::fs::remove_dir_all(&dir);
    if failures > 0 {
        eprintln!("chaos: {failures} of {cases} cases violated the pre-or-post contract");
        1
    } else {
        println!("chaos: OK — {cases} injected faults, every reopen was pre- or post-op exactly");
        0
    }
}
