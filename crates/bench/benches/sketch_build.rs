//! Sketch-construction throughput for every sketching strategy
//! (supports the §V-D discussion: sketches are built offline in one pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use joinmi_bench::trinomial_workload;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::KeyDistribution;

fn bench_sketch_build(c: &mut Criterion) {
    let workload = trinomial_workload(20_000, KeyDistribution::KeyDep, 1);
    let cfg = SketchConfig::new(256, 7);

    let mut group = c.benchmark_group("sketch_build_left_20k_rows");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for kind in SketchKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let sketch = kind
                        .build_left(&workload.pair.train, "key", "y", &cfg)
                        .expect("sketch build");
                    black_box(sketch.len())
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("sketch_build_right_20k_rows");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for kind in SketchKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let sketch = kind
                        .build_right(
                            &workload.pair.cand,
                            "key",
                            "x",
                            workload.pair.aggregation,
                            &cfg,
                        )
                        .expect("sketch build");
                    black_box(sketch.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sketch_build);
criterion_main!(benches);
