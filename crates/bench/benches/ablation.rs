//! Ablation benches: how sketch size and sketching strategy affect the
//! end-to-end (join + estimate) query cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use joinmi_bench::trinomial_workload;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::KeyDistribution;

fn bench_sketch_size_sweep(c: &mut Criterion) {
    let workload = trinomial_workload(20_000, KeyDistribution::KeyDep, 13);
    let pair = &workload.pair;

    let mut group = c.benchmark_group("ablation_sketch_size_sweep");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [64usize, 256, 1024, 4096] {
        let cfg = SketchConfig::new(n, 3);
        group.bench_with_input(BenchmarkId::new("tupsk_query", n), &n, |b, _| {
            let left = SketchKind::Tupsk
                .build_left(&pair.train, "key", "y", &cfg)
                .expect("left");
            let right = SketchKind::Tupsk
                .build_right(&pair.cand, "key", "x", pair.aggregation, &cfg)
                .expect("right");
            b.iter(|| {
                let joined = left.join(&right);
                black_box(joined.estimate_mi().map(|e| e.mi).unwrap_or(f64::NAN))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_strategy_query_cost");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let cfg = SketchConfig::new(1024, 3);
    for kind in SketchKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let left = kind
                    .build_left(&pair.train, "key", "y", &cfg)
                    .expect("left");
                let right = kind
                    .build_right(&pair.cand, "key", "x", pair.aggregation, &cfg)
                    .expect("right");
                b.iter(|| {
                    let joined = left.join(&right);
                    black_box(joined.estimate_mi().map(|e| e.mi).unwrap_or(f64::NAN))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sketch_size_sweep);
criterion_main!(benches);
