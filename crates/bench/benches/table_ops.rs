//! Relational-substrate throughput: group-by aggregation and the left-outer
//! join (the costs the sketches avoid paying per candidate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use joinmi_bench::trinomial_workload;
use joinmi_synth::KeyDistribution;
use joinmi_table::{group_by_aggregate, left_outer_join, Aggregation};

fn bench_table_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_ops");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for rows in [5_000usize, 20_000] {
        let workload = trinomial_workload(rows, KeyDistribution::KeyDep, 2);
        let aggregated = group_by_aggregate(&workload.pair.cand, "key", "x", Aggregation::Avg)
            .expect("group by");

        group.bench_with_input(BenchmarkId::new("group_by_avg", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    group_by_aggregate(&workload.pair.cand, "key", "x", Aggregation::Avg)
                        .expect("group by")
                        .num_rows(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("left_outer_join", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    left_outer_join(&workload.pair.train, "key", &aggregated, "key")
                        .expect("join")
                        .table
                        .num_rows(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table_ops);
criterion_main!(benches);
