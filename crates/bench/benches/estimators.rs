//! MI-estimator throughput at sketch-sized and full-join-sized samples
//! (complements the §V-D estimation-time numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use joinmi_estimators::knn::{kth_nn_distances_chebyshev, kth_nn_distances_chebyshev_scalar};
use joinmi_estimators::{dc_ksg_mi, discretize, mixed_ksg_mi, mle_mi};
use joinmi_synth::TrinomialConfig;
use joinmi_table::Value;

fn bench_estimators(c: &mut Criterion) {
    let gen = TrinomialConfig::new(256, 0.4, 0.35);
    let mut group = c.benchmark_group("estimators");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for n in [256usize, 1024, 4096, 10_000] {
        let data = gen.generate(n, 5);
        let x_codes = discretize(&data.xs);
        let y_codes = discretize(&data.ys);
        let xf: Vec<f64> = data.xs.iter().map(|v| v.as_f64().unwrap()).collect();
        let yf: Vec<f64> = data
            .ys
            .iter()
            .map(Value::as_f64)
            .map(Option::unwrap)
            .collect();

        group.bench_with_input(BenchmarkId::new("MLE", n), &n, |b, _| {
            b.iter(|| black_box(mle_mi(&x_codes, &y_codes).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("MixedKSG", n), &n, |b, _| {
            b.iter(|| black_box(mixed_ksg_mi(&xf, &yf, 3).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("DC-KSG", n), &n, |b, _| {
            b.iter(|| black_box(dc_ksg_mi(&x_codes, &yf, 3).unwrap()));
        });
    }
    group.finish();
}

/// The blocked Chebyshev k-NN kernel against the pre-refactor scalar oracle
/// on a correlated pair (the regime where the window expansion does real
/// work — uncorrelated data prunes after a handful of candidates).
fn bench_knn_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for n in [1024usize, 4096] {
        let (xs, ys) = joinmi_bench::knn_correlated_pair(n);

        group.bench_with_input(BenchmarkId::new("chebyshev", n), &n, |b, _| {
            b.iter(|| black_box(kth_nn_distances_chebyshev(&xs, &ys, 3)));
        });
        group.bench_with_input(BenchmarkId::new("chebyshev_scalar", n), &n, |b, _| {
            b.iter(|| black_box(kth_nn_distances_chebyshev_scalar(&xs, &ys, 3)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_knn_kernels);
criterion_main!(benches);
