//! §V-D head-to-head: materialize-and-estimate vs sketch-join-and-estimate
//! as the base table grows from 5k to 20k rows (sketch size n = 256).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use joinmi_bench::{trinomial_workload, PERF_SIZES};
use joinmi_eval::EstimatorMode;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::KeyDistribution;
use joinmi_table::{augment, AugmentSpec};

fn bench_full_vs_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_vs_sketch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for rows in PERF_SIZES {
        let workload = trinomial_workload(rows, KeyDistribution::KeyInd, 7);
        let pair = &workload.pair;
        let spec = AugmentSpec::new(
            pair.key_column.clone(),
            pair.target_column.clone(),
            pair.key_column.clone(),
            pair.feature_column.clone(),
            pair.aggregation,
        );
        let cfg = SketchConfig::new(256, 7);
        // Sketches are built offline; the online cost is join + estimate.
        let left = SketchKind::Tupsk
            .build_left(&pair.train, &pair.key_column, &pair.target_column, &cfg)
            .expect("left sketch");
        let right = SketchKind::Tupsk
            .build_right(
                &pair.cand,
                &pair.key_column,
                &pair.feature_column,
                pair.aggregation,
                &cfg,
            )
            .expect("right sketch");

        group.bench_with_input(
            BenchmarkId::new("full_join_and_estimate", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    let joined = augment(&pair.train, &pair.cand, &spec).expect("full join");
                    let feature = spec.feature_column_name();
                    let xs: Vec<_> = (0..joined.table.num_rows())
                        .map(|i| joined.table.value(i, &feature).expect("column"))
                        .collect();
                    let ys: Vec<_> = (0..joined.table.num_rows())
                        .map(|i| joined.table.value(i, &pair.target_column).expect("column"))
                        .collect();
                    black_box(EstimatorMode::Mle.estimate(&xs, &ys, 0))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sketch_join_and_estimate", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    let joined = left.join(&right);
                    black_box(EstimatorMode::Mle.estimate(joined.xs(), joined.ys(), 0))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sketch_build_offline", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    black_box(
                        SketchKind::Tupsk
                            .build_left(&pair.train, &pair.key_column, &pair.target_column, &cfg)
                            .expect("sketch")
                            .len(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_full_vs_sketch);
criterion_main!(benches);
