//! Sketch-join and sketch-estimation latency (the online, per-candidate cost
//! of a discovery query).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use joinmi_bench::trinomial_workload;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::KeyDistribution;

fn bench_sketch_join(c: &mut Criterion) {
    let workload = trinomial_workload(20_000, KeyDistribution::KeyInd, 3);

    let mut group = c.benchmark_group("sketch_join_and_estimate");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [256usize, 1024, 4096] {
        let cfg = SketchConfig::new(n, 11);
        let left = SketchKind::Tupsk
            .build_left(&workload.pair.train, "key", "y", &cfg)
            .expect("left sketch");
        let right = SketchKind::Tupsk
            .build_right(
                &workload.pair.cand,
                "key",
                "x",
                workload.pair.aggregation,
                &cfg,
            )
            .expect("right sketch");

        group.bench_with_input(BenchmarkId::new("join_only", n), &n, |b, _| {
            b.iter(|| black_box(left.join(&right).len()));
        });
        group.bench_with_input(BenchmarkId::new("join_and_mle_estimate", n), &n, |b, _| {
            b.iter(|| {
                let joined = left.join(&right);
                black_box(joined.estimate_mi().map(|e| e.mi).unwrap_or(f64::NAN))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sketch_join);
criterion_main!(benches);
