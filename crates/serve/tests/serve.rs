//! End-to-end daemon tests: a corpus split across 3 shard files must answer
//! REST queries bit-for-bit identically to the same corpus in one
//! repository queried in process, and every guardrail must be reachable
//! through the public API.

use std::time::Duration;

use joinmi_discovery::{
    CompactMode, RankedCandidate, RelationshipQuery, RepositoryConfig, TableRepository,
};
use joinmi_estimators::EstimatorWorkspace;
use joinmi_serve::json::Json;
use joinmi_serve::{
    client_request, wait_healthy, Deadline, QueryRequest, ServeError, Server, ServerConfig,
    ShardSet,
};
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::TaxiScenario;
use joinmi_table::Table;

const SKETCH: SketchConfig = SketchConfig { size: 256, seed: 3 };

fn repo_config() -> RepositoryConfig {
    RepositoryConfig {
        sketch: SKETCH,
        ..RepositoryConfig::default()
    }
}

/// The corpus: three candidate tables plus the taxi query table.
fn corpus() -> (Vec<Table>, Table) {
    let scenario = TaxiScenario::generate(40, 15, 3);
    (
        vec![
            scenario.weather,
            scenario.demographics,
            scenario.inspections,
        ],
        scenario.taxi,
    )
}

/// Saves `tables`, contiguously partitioned, into `num_shards` files under a
/// fresh temp prefix; returns the paths.
fn save_shards(tables: &[Table], num_shards: usize, tag: &str) -> Vec<std::path::PathBuf> {
    let chunk = tables.len().div_ceil(num_shards);
    (0..num_shards)
        .map(|s| {
            let mut repo = TableRepository::new(repo_config());
            for table in tables.iter().skip(s * chunk).take(chunk) {
                repo.add_table(table.clone()).unwrap();
            }
            let path = std::env::temp_dir()
                .join(format!("joinmi-serve-{tag}-{}-{s}.jmi", std::process::id()));
            repo.save(&path).unwrap();
            path
        })
        .collect()
}

fn single_repo(tables: &[Table]) -> TableRepository {
    let mut repo = TableRepository::new(repo_config());
    for table in tables {
        repo.add_table(table.clone()).unwrap();
    }
    repo
}

fn in_process_query(train: &Table, top_k: usize) -> RelationshipQuery {
    RelationshipQuery::new(train.clone(), "zipcode", "num_trips")
        .with_sketch(SketchKind::Tupsk, SKETCH)
        .with_min_join_size(10)
        .with_top_k(top_k)
}

/// The same query as JSON for the wire.
fn request_body(train: &Table, top_k: usize) -> String {
    let rows: Vec<String> = (0..train.num_rows())
        .map(|i| {
            let zip = train.value(i, "zipcode").unwrap();
            let trips = train.value(i, "num_trips").unwrap();
            format!(
                "[\"{}\", {}]",
                zip.as_str().unwrap(),
                trips.as_i64().unwrap()
            )
        })
        .collect();
    format!(
        r#"{{"key_column": "zipcode", "target_column": "num_trips",
            "rows": [{}],
            "top_k": {top_k}, "min_join_size": 10,
            "sketch_kind": "TUPSK", "sketch_size": 256, "sketch_seed": 3}}"#,
        rows.join(", ")
    )
}

fn fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
    results
        .iter()
        .map(|r| {
            (
                r.candidate_index,
                r.mi.to_bits(),
                r.sketch_join_size,
                r.key_overlap,
            )
        })
        .collect()
}

/// Extracts the same fingerprint from a wire response, using the exact
/// `mi_bits` field and the global candidate index.
fn wire_fingerprint(body: &str) -> Vec<(usize, u64, usize, usize)> {
    let doc = Json::parse(body).unwrap();
    doc.get("results")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|row| {
            let bits_hex = row.get("mi_bits").and_then(Json::as_str).unwrap();
            let bits = u64::from_str_radix(bits_hex.trim_start_matches("0x"), 16).unwrap();
            (
                row.get("candidate_index").and_then(Json::as_i64).unwrap() as usize,
                bits,
                row.get("join_size").and_then(Json::as_i64).unwrap() as usize,
                row.get("key_overlap").and_then(Json::as_i64).unwrap() as usize,
            )
        })
        .collect()
}

fn cleanup(paths: &[std::path::PathBuf]) {
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn three_shard_rest_query_is_bit_identical_to_single_repository() {
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "parity");
    let single = single_repo(&tables);

    let shards = ShardSet::open(&paths).unwrap();
    assert_eq!(shards.shards().len(), 3);
    assert_eq!(shards.total_candidates(), single.candidates().len());

    let mut server = Server::start(
        ServerConfig {
            workers: 2,
            timeout_ms: 0,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    for top_k in [0, 2, 5] {
        let expected = fingerprint(&in_process_query(&train, top_k).execute(&single).unwrap());
        assert!(top_k != 0 || !expected.is_empty());

        let (status, body) =
            client_request(&addr, "POST", "/v1/query", &request_body(&train, top_k)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(wire_fingerprint(&body), expected, "top_k={top_k}");

        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("shards_queried").and_then(Json::as_i64), Some(3));
    }

    server.shutdown();
    cleanup(&paths);
}

#[test]
fn shard_set_merge_matches_single_repository_without_http() {
    // Same parity pinned one layer down, plus: a per-shard run with the
    // daemon's sequential path merges into the single-repo global order.
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "merge");
    let single = single_repo(&tables);
    let shards = ShardSet::open(&paths).unwrap();

    let expected = fingerprint(&in_process_query(&train, 0).execute(&single).unwrap());
    let request = QueryRequest::from_json(&request_body(&train, 0)).unwrap();
    let mut ws = EstimatorWorkspace::new();
    let outcome = shards
        .execute(&request, &mut ws, None, Deadline::unlimited(), 0, &[])
        .unwrap();
    assert!(outcome.complete(), "no shard skipped or failed");
    let got: Vec<_> = outcome
        .results
        .iter()
        .map(|r| {
            (
                r.global_candidate_index,
                r.candidate.mi.to_bits(),
                r.candidate.sketch_join_size,
                r.candidate.key_overlap,
            )
        })
        .collect();
    assert_eq!(got, expected);
    cleanup(&paths);
}

#[test]
fn expired_deadline_is_a_typed_timeout() {
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 2, "deadline");
    let shards = ShardSet::open(&paths).unwrap();
    let request = QueryRequest::from_json(&request_body(&train, 0)).unwrap();

    let deadline = Deadline::starting_now(1);
    std::thread::sleep(Duration::from_millis(5));
    let mut ws = EstimatorWorkspace::new();
    let err = shards
        .execute(&request, &mut ws, None, deadline, 1, &[])
        .expect_err("expired deadline must not run");
    assert_eq!(err, ServeError::Timeout { timeout_ms: 1 });
    cleanup(&paths);
}

#[test]
fn repeated_query_hits_the_cache_bit_identically() {
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "cache");
    let shards = ShardSet::open(&paths).unwrap();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            timeout_ms: 0,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    let body = request_body(&train, 5);
    let (s1, first) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
    let (s2, second) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
    assert_eq!((s1, s2), (200, 200));
    let d1 = Json::parse(&first).unwrap();
    let d2 = Json::parse(&second).unwrap();
    assert_eq!(d1.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(d2.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(wire_fingerprint(&first), wire_fingerprint(&second));
    // Same query with different whitespace/field order still hits.
    let reordered = body.replacen(
        "\"key_column\": \"zipcode\", \"target_column\": \"num_trips\"",
        "\"target_column\": \"num_trips\", \"key_column\": \"zipcode\"",
        1,
    );
    assert_ne!(reordered, body);
    let (_, third) = client_request(&addr, "POST", "/v1/query", &reordered).unwrap();
    assert_eq!(
        Json::parse(&third).unwrap().get("cached"),
        Some(&Json::Bool(true))
    );

    server.shutdown();
    cleanup(&paths);
}

#[test]
fn stage_cache_counters_move_on_hit_and_miss_over_rest() {
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 2, "stagecache");
    let shards = ShardSet::open(&paths).unwrap();
    // Result cache OFF so every POST re-scores and exercises the stage
    // cache; the stage cache itself keeps its defaults.
    let mut server = Server::start(
        ServerConfig {
            workers: 2,
            timeout_ms: 0,
            cache_capacity: 0,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    let stage_stat = |doc: &Json, field: &str| -> i64 {
        doc.get("stage_cache")
            .and_then(|s| s.get(field))
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("stage_cache.{field} missing"))
    };
    let fetch_stats = || {
        let (status, body) = client_request(&addr, "GET", "/v1/shards", "").unwrap();
        assert_eq!(status, 200);
        Json::parse(&body).unwrap()
    };

    let before = fetch_stats();
    assert_eq!(stage_stat(&before, "estimate_hits"), 0);
    assert_eq!(stage_stat(&before, "estimate_misses"), 0);
    assert_eq!(stage_stat(&before, "entries"), 0);

    // Cold query: misses recorded, entries resident.
    let body = request_body(&train, 0);
    let (status, first) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
    assert_eq!(status, 200, "{first}");
    let after_cold = fetch_stats();
    let cold_misses = stage_stat(&after_cold, "estimate_misses");
    assert!(cold_misses > 0);
    assert_eq!(stage_stat(&after_cold, "estimate_hits"), 0);
    assert!(stage_stat(&after_cold, "entries") > 0);
    assert!(stage_stat(&after_cold, "resident_bytes") > 0);

    // Identical repeat: level-2 hits, no new misses, bit-identical results —
    // and `cached: false` shows the response was re-ranked, not replayed
    // from the result cache.
    let (status, second) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        Json::parse(&second).unwrap().get("cached"),
        Some(&Json::Bool(false))
    );
    assert_eq!(wire_fingerprint(&first), wire_fingerprint(&second));
    let after_hit = fetch_stats();
    assert!(stage_stat(&after_hit, "estimate_hits") > 0);
    assert_eq!(stage_stat(&after_hit, "estimate_misses"), cold_misses);

    // A *different* request (other top_k) over the same rows still hits the
    // stage cache: its ranking is a prefix of the unlimited one, bit-for-bit.
    let hits_before_prefix = stage_stat(&after_hit, "estimate_hits");
    let (status, truncated) =
        client_request(&addr, "POST", "/v1/query", &request_body(&train, 2)).unwrap();
    assert_eq!(status, 200);
    let full = wire_fingerprint(&first);
    assert_eq!(wire_fingerprint(&truncated), full[..2.min(full.len())]);
    let after_prefix = fetch_stats();
    assert!(stage_stat(&after_prefix, "estimate_hits") > hits_before_prefix);
    assert_eq!(stage_stat(&after_prefix, "estimate_misses"), cold_misses);

    // The healthz payload carries the same stats block.
    let (status, health) = client_request(&addr, "GET", "/v1/healthz", "").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&health).unwrap();
    assert_eq!(
        stage_stat(&health, "estimate_misses"),
        cold_misses,
        "healthz stage_cache stats disagree with /v1/shards"
    );

    server.shutdown();
    cleanup(&paths);
}

#[test]
fn background_compaction_folds_append_logs_and_swaps_epochs_bit_identically() {
    // One shard per table; each file is built as prefix-ingest + one append
    // group, so its *content* equals the full table while its on-disk shape
    // carries an append log for the compactor to fold. Shard 0 is sealed up
    // front: the compactor must skip it, and it must serve normally.
    let (tables, train) = corpus();
    let single = single_repo(&tables);
    let expected = fingerprint(&in_process_query(&train, 0).execute(&single).unwrap());

    let paths: Vec<std::path::PathBuf> = tables
        .iter()
        .enumerate()
        .map(|(s, table)| {
            let rows = table.num_rows();
            let mut repo = TableRepository::new(repo_config());
            repo.add_table(table.slice_rows(0..rows - 5)).unwrap();
            let path = std::env::temp_dir().join(format!(
                "joinmi-serve-compact-{}-{s}.jmi",
                std::process::id()
            ));
            repo.save(&path).unwrap();
            let mut appender = TableRepository::load(&path).unwrap();
            appender
                .append_rows(&table.slice_rows(rows - 5..rows))
                .unwrap();
            appender.append_to(&path).unwrap();
            path
        })
        .collect();
    let report = TableRepository::compact(&paths[0], CompactMode::Seal).unwrap();
    assert_eq!((report.groups_folded, report.sealed), (1, true));

    let shards = ShardSet::open(&paths).unwrap();
    let opened_generation = shards.generation();
    let mut server = Server::start(
        ServerConfig {
            workers: 2,
            timeout_ms: 0,
            compact_after_groups: 1,
            compact_poll_ms: 25,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    // Serving starts on the appended epoch; the ranking is already exact.
    let (status, before) =
        client_request(&addr, "POST", "/v1/query", &request_body(&train, 0)).unwrap();
    assert_eq!(status, 200, "{before}");
    assert_eq!(wire_fingerprint(&before), expected);

    // Wait for the compactor to fold the two unsealed shards.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let (status, body) = client_request(&addr, "GET", "/v1/shards", "").unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        if doc.get("compactions").and_then(Json::as_i64) == Some(2) {
            break doc;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "compactor never folded both shards: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    // The swap installed a new generation; every shard is flat; only shard 0
    // is sealed; the threshold echo matches the config.
    assert_ne!(
        stats.get("generation").and_then(Json::as_str).unwrap(),
        format!("0x{opened_generation:016x}"),
        "compaction must bump the served generation"
    );
    assert_eq!(
        stats.get("compact_after_groups").and_then(Json::as_i64),
        Some(1)
    );
    let shard_rows = stats.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shard_rows.len(), 3);
    for (s, row) in shard_rows.iter().enumerate() {
        assert_eq!(row.get("append_groups").and_then(Json::as_i64), Some(0));
        assert_eq!(row.get("appended_bytes").and_then(Json::as_i64), Some(0));
        assert_eq!(
            row.get("sealed"),
            Some(&Json::Bool(s == 0)),
            "only shard 0 was sealed"
        );
    }

    // Post-swap queries still rank bit-for-bit identically, and the on-disk
    // files really were rewritten flat (a fresh strict open agrees).
    let (status, after) =
        client_request(&addr, "POST", "/v1/query", &request_body(&train, 0)).unwrap();
    assert_eq!(status, 200, "{after}");
    assert_eq!(wire_fingerprint(&after), expected);
    let reopened = ShardSet::open(&paths).unwrap();
    for shard in reopened.shards() {
        assert_eq!(shard.snapshot().append_groups(), 0);
    }

    server.shutdown();
    cleanup(&paths);
}

#[test]
fn append_epoch_changes_the_generation_and_a_noop_reload_does_not() {
    let (tables, _) = corpus();
    let paths = save_shards(&tables, 2, "generation");

    let first = ShardSet::open(&paths).unwrap().generation();
    let reopened = ShardSet::open(&paths).unwrap().generation();
    assert_eq!(first, reopened, "unchanged files keep their generation");

    // Append rows to shard 1 (inspections lives there alone) and reopen.
    let scenario = TaxiScenario::generate(40, 15, 3);
    let extra = scenario.inspections.slice_rows(0..4);
    let mut repo = TableRepository::load(&paths[1]).unwrap();
    assert!(repo.append_rows(&extra).unwrap() > 0);
    repo.append_to(&paths[1]).unwrap();

    let appended = ShardSet::open(&paths).unwrap().generation();
    assert_ne!(first, appended, "append epoch must change the generation");
    cleanup(&paths);
}

#[test]
fn torn_shard_is_refused_strictly_and_repaired_with_opt_in() {
    let (tables, _) = corpus();
    let paths = save_shards(&tables, 2, "torn");

    // Tear shard 0 by appending and cutting the tail mid-group.
    let scenario = TaxiScenario::generate(40, 15, 3);
    let mut repo = TableRepository::load(&paths[0]).unwrap();
    let base_len = std::fs::metadata(&paths[0]).unwrap().len();
    assert!(
        repo.append_rows(&scenario.weather.slice_rows(0..6))
            .unwrap()
            > 0
    );
    repo.append_to(&paths[0]).unwrap();
    let full = std::fs::read(&paths[0]).unwrap();
    assert!(full.len() as u64 > base_len);
    std::fs::write(&paths[0], &full[..full.len() - 3]).unwrap();

    // Strict open refuses the set.
    assert!(ShardSet::open(&paths).is_err());

    // Repairing open drops the torn group and reports it.
    let (shards, repairs) = ShardSet::open_with_repair(&paths).unwrap();
    assert_eq!(shards.shards().len(), 2);
    assert!(repairs[0].report.is_torn());
    assert_eq!(repairs[0].report.recovered_len, base_len);
    assert!(!repairs[1].report.is_torn());
    assert_eq!(std::fs::metadata(&paths[0]).unwrap().len(), base_len);
    cleanup(&paths);
}

#[test]
fn http_error_paths_are_typed() {
    let (tables, _) = corpus();
    let paths = save_shards(&tables, 1, "errors");
    let shards = ShardSet::open(&paths).unwrap();
    let mut server = Server::start(ServerConfig::default(), shards).unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    let (status, body) = client_request(&addr, "POST", "/v1/query", "{not json").unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");

    let (status, body) = client_request(&addr, "GET", "/v1/nope", "").unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("\"code\":\"not_found\""), "{body}");

    let (status, body) = client_request(&addr, "GET", "/v1/query", "").unwrap();
    assert_eq!(status, 405);
    assert!(body.contains("\"code\":\"method_not_allowed\""), "{body}");

    let (status, body) = client_request(&addr, "GET", "/v1/shards", "").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("shards").and_then(Json::as_arr).map(<[Json]>::len),
        Some(1)
    );
    assert!(doc.get("timeout_ms").is_some());
    assert!(doc.get("max_inflight").is_some());
    assert!(doc.get("cache_capacity").is_some());

    server.shutdown();
    cleanup(&paths);
}

#[test]
fn saturated_admission_gate_rejects_with_429() {
    // Deterministic saturation: a one-slot gate where the only worker is
    // busy on a query that cannot finish before we probe — its deadline is
    // unlimited and its rows are large enough to keep a debug build busy.
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "admission");
    let shards = ShardSet::open(&paths).unwrap();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            timeout_ms: 0,
            max_inflight: 1,
            cache_capacity: 0,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    // Inflate the query: repeat the taxi rows many times so the sketch
    // build alone takes well over the probe window.
    let rows: Vec<String> = (0..train.num_rows())
        .map(|i| {
            format!(
                "[\"{}\", {}]",
                train.value(i, "zipcode").unwrap().as_str().unwrap(),
                train.value(i, "num_trips").unwrap().as_i64().unwrap()
            )
        })
        .collect();
    let big_rows = rows.join(", ");
    let repeated = vec![big_rows; 25];
    let slow_body = format!(
        r#"{{"key_column": "zipcode", "target_column": "num_trips",
            "rows": [{}], "min_join_size": 10,
            "sketch_size": 256, "sketch_seed": 3}}"#,
        repeated.join(", ")
    );

    // Wait (via the health endpoint's inflight gauge) until the slow query
    // has actually been admitted, then probe: the one-slot gate must answer
    // 429. Health checks themselves bypass admission, which is exactly what
    // lets us observe a saturated daemon here. The admitted-but-still-busy
    // window is the whole scoring run, so one retry loop around the race
    // keeps this robust on any machine.
    let probe_body = request_body(&train, 3);
    let mut saw_overloaded = false;
    'attempts: for _ in 0..5 {
        let addr_clone = addr.clone();
        let body_clone = slow_body.clone();
        let slow = std::thread::spawn(move || {
            client_request(&addr_clone, "POST", "/v1/query", &body_clone).unwrap()
        });
        while !slow.is_finished() {
            let (status, health) = client_request(&addr, "GET", "/v1/healthz", "").unwrap();
            assert_eq!(status, 200, "health must answer while saturated");
            let inflight = Json::parse(&health)
                .unwrap()
                .get("inflight")
                .and_then(Json::as_i64);
            if inflight == Some(1) {
                let (status, body) =
                    client_request(&addr, "POST", "/v1/query", &probe_body).unwrap();
                if status == 429 {
                    assert!(body.contains("\"code\":\"overloaded\""), "{body}");
                    saw_overloaded = true;
                }
            }
        }
        let (slow_status, _) = slow.join().unwrap();
        assert_eq!(slow_status, 200);
        if saw_overloaded {
            break 'attempts;
        }
    }
    assert!(
        saw_overloaded,
        "never observed a 429 while the gate was held"
    );

    // With the slot free again, the probe succeeds.
    let (status, _) = client_request(&addr, "POST", "/v1/query", &probe_body).unwrap();
    assert_eq!(status, 200);

    server.shutdown();
    cleanup(&paths);
}

// ---------------------------------------------------------------------------
// Robustness: panic isolation, quarantine/degraded serving, drain
// ---------------------------------------------------------------------------

use joinmi_store::fault::{self, FaultAction, FaultPlan};

/// Serializes tests that arm the process-global fault plan: `arm_global`
/// replaces the whole plan, so two such tests running concurrently would
/// clobber each other's triggers.
static GLOBAL_FAULTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock_global_faults() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_FAULTS.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn shard_failure_is_isolated_not_fatal() {
    // Library level: a shard failing mid-query lands in `failed` while the
    // other shards still contribute, and quarantined indices are skipped
    // without being scored. Thread-local arming keeps this test hermetic.
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "isolate");
    let shards = ShardSet::open(&paths).unwrap();
    let request = QueryRequest::from_json(&request_body(&train, 0)).unwrap();
    let mut ws = EstimatorWorkspace::new();

    let scoped = format!("serve.shard.score:{}", paths[1].display());
    {
        let _guard = fault::arm(FaultPlan::at_failpoint(&scoped, 0, FaultAction::Error));
        let outcome = shards
            .execute(&request, &mut ws, None, Deadline::unlimited(), 0, &[])
            .unwrap();
        assert_eq!(outcome.degraded(), vec![1]);
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].0, 1);
        assert!(
            outcome.failed[0].1.contains("joinmi fault injection"),
            "failure text carries the injected error: {}",
            outcome.failed[0].1
        );
        assert!(outcome.skipped.is_empty());
        assert!(
            outcome.results.iter().all(|r| r.shard != 1),
            "the failed shard contributed nothing"
        );
        assert!(
            !outcome.results.is_empty(),
            "healthy shards still contributed"
        );
    }

    // Quarantine skip: the shard is not scored at all (the armed failpoint
    // is gone, so a non-skipped shard would succeed).
    let outcome = shards
        .execute(&request, &mut ws, None, Deadline::unlimited(), 0, &[2])
        .unwrap();
    assert_eq!(outcome.skipped, vec![2]);
    assert!(outcome.failed.is_empty());
    assert_eq!(outcome.degraded(), vec![2]);
    assert!(!outcome.complete());
    cleanup(&paths);
}

#[test]
fn worker_panic_is_a_typed_500_and_the_daemon_survives() {
    let _serial = lock_global_faults();
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "panic");
    let shards = ShardSet::open(&paths).unwrap();
    let mut server = Server::start(
        ServerConfig {
            workers: 2,
            timeout_ms: 0,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    // Arm: the FIRST query on THIS daemon (port-scoped checkpoint) panics
    // inside the worker. The fault must fire on a pool thread the test does
    // not own, hence the process-global plan.
    let checkpoint = format!("serve.worker.query:{}", server.local_addr().port());
    let body = request_body(&train, 3);
    {
        let _guard = fault::arm_global(FaultPlan::at_failpoint(&checkpoint, 0, FaultAction::Panic));
        let (status, response) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
        assert_eq!(status, 500, "{response}");
        assert!(response.contains("\"code\":\"panic\""), "{response}");
    }

    // The daemon survived: the worker recovered, the panic is counted, and
    // the very same query now succeeds end to end.
    let (status, shards_body) = client_request(&addr, "GET", "/v1/shards", "").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&shards_body).unwrap();
    assert_eq!(doc.get("worker_panics").and_then(Json::as_i64), Some(1));

    let (status, response) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    assert_eq!(doc.get("partial"), Some(&Json::Bool(false)));

    server.shutdown();
    cleanup(&paths);
}

#[test]
fn quarantined_shard_degrades_and_the_guardian_restores_it() {
    let _serial = lock_global_faults();
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "quarantine");
    let single = single_repo(&tables);
    let expected = fingerprint(&in_process_query(&train, 0).execute(&single).unwrap());
    let shards = ShardSet::open(&paths).unwrap();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            timeout_ms: 0,
            compact_poll_ms: 20,
            retry_backoff_ms: 5,
            retry_backoff_cap_ms: 50,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    // Corrupt shard 1's file on disk (the served snapshot is in memory, so
    // serving is unaffected) and inject one scoring failure: the breaker
    // trips, and the guardian's reopens now FAIL against the corrupt file,
    // so the shard stays quarantined instead of bouncing straight back.
    let original = std::fs::read(&paths[1]).unwrap();
    std::fs::write(&paths[1], b"garbage, not a repository").unwrap();
    let scoped = format!("serve.shard.score:{}", paths[1].display());
    let _guard = fault::arm_global(FaultPlan::at_failpoint(&scoped, 0, FaultAction::Error));

    // Strict request (the default): degraded shard => typed 500.
    let body = request_body(&train, 0);
    let (status, response) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
    assert_eq!(status, 500, "{response}");
    assert!(response.contains("\"code\":\"degraded\""), "{response}");
    assert!(response.contains("allow_partial"), "{response}");

    // Opt-in partial: 200 with the healthy shards' merged ranking.
    let partial_body = body.replacen('{', "{\"allow_partial\": true, ", 1);
    let (status, response) = client_request(&addr, "POST", "/v1/query", &partial_body).unwrap();
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    assert_eq!(doc.get("partial"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("degraded_shards")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1)
    );
    assert!(
        !doc.get("results")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty(),
        "healthy shards still answer"
    );

    // healthz stays 200 but reports degraded; /v1/shards shows the breaker
    // counters and climbing (failing) reopen attempts.
    let (status, health) = client_request(&addr, "GET", "/v1/healthz", "").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&health).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("degraded"));
    assert_eq!(
        doc.get("quarantined_shards").and_then(Json::as_i64),
        Some(1)
    );

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut saw_reopen_attempt = false;
    while std::time::Instant::now() < deadline && !saw_reopen_attempt {
        let (_, shards_body) = client_request(&addr, "GET", "/v1/shards", "").unwrap();
        let doc = Json::parse(&shards_body).unwrap();
        let shard1 = &doc.get("shards").and_then(Json::as_arr).unwrap()[1];
        assert_eq!(shard1.get("quarantined"), Some(&Json::Bool(true)));
        saw_reopen_attempt = shard1
            .get("reopen_attempts")
            .and_then(Json::as_i64)
            .is_some_and(|n| n >= 1);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_reopen_attempt, "guardian must be retrying the reopen");

    // Heal the file: the next reopen succeeds and the shard re-enters
    // rotation.
    std::fs::write(&paths[1], &original).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut restored = false;
    while std::time::Instant::now() < deadline && !restored {
        let (_, health) = client_request(&addr, "GET", "/v1/healthz", "").unwrap();
        restored = Json::parse(&health)
            .unwrap()
            .get("quarantined_shards")
            .and_then(Json::as_i64)
            == Some(0);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(restored, "guardian must restore the healed shard");

    // Fully healed: a strict query answers 200 with the bit-exact complete
    // ranking again.
    let (status, response) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    assert_eq!(wire_fingerprint(&response), expected);
    let doc = Json::parse(&response).unwrap();
    assert_eq!(doc.get("partial"), Some(&Json::Bool(false)));

    server.shutdown();
    cleanup(&paths);
}

#[test]
fn drain_flips_healthz_and_rejects_new_queries() {
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 2, "drain");
    let shards = ShardSet::open(&paths).unwrap();
    let mut server = Server::start(
        ServerConfig {
            workers: 1,
            timeout_ms: 0,
            ..ServerConfig::default()
        },
        shards,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    server.begin_drain();
    assert!(server.is_draining());

    // Readiness flips so load balancers stop routing here...
    let (status, health) = client_request(&addr, "GET", "/v1/healthz", "").unwrap();
    assert_eq!(status, 503);
    let doc = Json::parse(&health).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("draining"));

    // ...and new queries get a typed 503 instead of scoring work.
    let (status, response) =
        client_request(&addr, "POST", "/v1/query", &request_body(&train, 3)).unwrap();
    assert_eq!(status, 503, "{response}");
    assert!(response.contains("\"code\":\"draining\""), "{response}");

    // Nothing in flight: the drain completes immediately and shuts down.
    assert!(server.drain(Duration::from_secs(1)));
    cleanup(&paths);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_the_daemon_process_gracefully() {
    let (tables, _train) = corpus();
    let paths = save_shards(&tables, 2, "sigterm");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_joinmi_serve"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--drain-ms")
        .arg("2000")
        .args(&paths)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // The daemon prints its bound address on stderr; read lines until then.
    use std::io::BufRead;
    let stderr = child.stderr.take().unwrap();
    let mut reader = std::io::BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        if let Some(rest) = line
            .trim()
            .strip_prefix("joinmi_serve: listening on http://")
        {
            addr = Some(rest.to_owned());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("daemon must announce its address");
    wait_healthy(&addr, Duration::from_secs(10)).unwrap();

    // SIGTERM → graceful drain → clean exit 0.
    let status = std::process::Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .unwrap();
    assert!(status.success(), "kill -TERM must be delivered");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let exit = loop {
        if let Some(exit) = child.try_wait().unwrap() {
            break exit;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon must exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(exit.success(), "graceful drain exits 0, got {exit:?}");

    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
    assert!(
        rest.contains("draining"),
        "drain must be announced on stderr: {rest}"
    );
    cleanup(&paths);
}

/// Interval fingerprint of an in-process ranking: global index, exact MI
/// bits, and exact credible-bound bits.
fn interval_fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, u64, u64)> {
    results
        .iter()
        .map(|r| {
            let iv = r.interval.as_ref().expect("interval missing");
            (
                r.candidate_index,
                r.mi.to_bits(),
                iv.ci_lo.to_bits(),
                iv.ci_hi.to_bits(),
            )
        })
        .collect()
}

#[test]
fn interval_rest_query_reproduces_single_repository_interval_ranking() {
    let (tables, train) = corpus();
    let paths = save_shards(&tables, 3, "interval");
    let single = single_repo(&tables);

    let mut server = Server::start(
        ServerConfig {
            workers: 2,
            timeout_ms: 0,
            ..ServerConfig::default()
        },
        ShardSet::open(&paths).unwrap(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    wait_healthy(&addr, Duration::from_secs(5)).unwrap();

    for top_k in [0, 3] {
        let expected = interval_fingerprint(
            &in_process_query(&train, top_k)
                .with_confidence(0.95)
                .execute(&single)
                .unwrap(),
        );
        assert!(top_k != 0 || !expected.is_empty());

        // Same query over the wire with the confidence field set.
        let body =
            request_body(&train, top_k).replacen("\"top_k\"", "\"confidence\": 0.95, \"top_k\"", 1);
        let (status, response) = client_request(&addr, "POST", "/v1/query", &body).unwrap();
        assert_eq!(status, 200, "{response}");
        let doc = Json::parse(&response).unwrap();
        let got: Vec<(usize, u64, u64, u64)> = doc
            .get("results")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|row| {
                let bits = |field: &str| {
                    let hex = row.get(field).and_then(Json::as_str).unwrap();
                    u64::from_str_radix(hex.trim_start_matches("0x"), 16).unwrap()
                };
                // The plain float fields must round-trip to the same bits the
                // hex spellings pin down.
                let ci_lo = row.get("ci_lo").and_then(Json::as_f64).unwrap();
                let ci_hi = row.get("ci_hi").and_then(Json::as_f64).unwrap();
                assert_eq!(ci_lo.to_bits(), bits("ci_lo_bits"));
                assert_eq!(ci_hi.to_bits(), bits("ci_hi_bits"));
                assert!(row.get("mi_var").and_then(Json::as_f64).unwrap() >= 0.0);
                (
                    row.get("candidate_index").and_then(Json::as_i64).unwrap() as usize,
                    bits("mi_bits"),
                    bits("ci_lo_bits"),
                    bits("ci_hi_bits"),
                )
            })
            .collect();
        assert_eq!(got, expected, "top_k={top_k}");
    }

    // A point query must not carry interval fields.
    let (status, response) =
        client_request(&addr, "POST", "/v1/query", &request_body(&train, 3)).unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(!response.contains("ci_lo"), "point results must stay bare");

    // The shards endpoint surfaces the new scoring counters.
    let (status, shards_body) = client_request(&addr, "GET", "/v1/shards", "").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&shards_body).unwrap();
    assert!(doc.get("early_stopped").and_then(Json::as_i64).is_some());
    assert!(doc.get("pruned").and_then(Json::as_i64).is_some());

    // An out-of-range confidence is a typed 400.
    let bad = request_body(&train, 3).replacen("\"top_k\"", "\"confidence\": 1.5, \"top_k\"", 1);
    let (status, response) = client_request(&addr, "POST", "/v1/query", &bad).unwrap();
    assert_eq!(status, 400, "{response}");
    assert!(response.contains("confidence"));

    server.shutdown();
    cleanup(&paths);
}
