//! `joinmi_serve` — the sharded discovery daemon.
//!
//! ```text
//! joinmi_serve --addr 127.0.0.1:7171 shard-0.jmi shard-1.jmi shard-2.jmi
//! ```
//!
//! Flags (all optional; defaults in parentheses):
//!
//! * `--addr HOST:PORT` — bind address (`127.0.0.1:7171`; port 0 picks one)
//! * `--workers N` — query worker threads (2)
//! * `--timeout-ms N` — per-query wall-clock budget, 0 = none (10000)
//! * `--max-inflight N` — admission limit, 0 = unlimited (32)
//! * `--cache N` — result-cache entries, 0 = disabled (128)
//! * `--cache-entries N` — cross-query stage-cache entries, 0 = disabled (4096)
//! * `--cache-bytes N` — cross-query stage-cache resident-byte bound, 0 = unbounded (64 MiB)
//! * `--repair` — repair torn append tails at open instead of refusing them
//! * `--compact-after N` — background-compact a shard once it carries ≥ N
//!   append groups, 0 = off (0)
//! * `--compact-bytes N` — background-compact a shard once its on-disk append
//!   log reaches N bytes, 0 = off (0)
//! * `--compact-poll-ms N` — guardian trigger-check interval (500)
//! * `--retry-backoff-ms N` — base delay for background retries
//!   (quarantine reopens, failed compactions); doubles per failure (1000)
//! * `--retry-backoff-cap-ms N` — cap on any single retry delay (60000)
//! * `--drain-ms N` — SIGTERM drain budget for in-flight queries (5000)
//!
//! On SIGTERM (or SIGINT) the daemon drains gracefully: `/v1/healthz` flips
//! to 503, new queries get a typed 503, in-flight queries finish within the
//! `--drain-ms` budget, then the process exits 0.
//!
//! The full protocol and operator runbook live in `docs/SERVING.md`.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;
use std::time::Duration;

use joinmi_serve::{Server, ServerConfig, ShardSet};

/// SIGTERM/SIGINT → one atomic flag, polled by the main loop. Hand-rolled
/// FFI because the workspace builds offline (no `libc`/`signal-hook`): the
/// handler does nothing but an atomic store, which is async-signal-safe, and
/// this module is the only unsafe code in the workspace — the serve library
/// itself still forbids unsafe.
#[cfg(unix)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)` from the libc that std already links. Handlers
        // are passed and returned as raw addresses (`sighandler_t`).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGTERM and SIGINT.
    pub fn install() {
        let handler = on_terminate as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn should_terminate() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signal {
    pub fn install() {}

    pub fn should_terminate() -> bool {
        false
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("joinmi_serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return Ok(ExitCode::SUCCESS);
    }

    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".to_owned(),
        ..ServerConfig::default()
    };
    let mut repair = false;
    let mut shard_paths: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag '{arg}' needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = take_value(&mut i)?,
            "--workers" => config.workers = parse_num(arg, &take_value(&mut i)?)?,
            "--timeout-ms" => config.timeout_ms = parse_num(arg, &take_value(&mut i)?)?,
            "--max-inflight" => config.max_inflight = parse_num(arg, &take_value(&mut i)?)?,
            "--cache" => config.cache_capacity = parse_num(arg, &take_value(&mut i)?)?,
            "--cache-entries" => config.stage_cache_entries = parse_num(arg, &take_value(&mut i)?)?,
            "--cache-bytes" => config.stage_cache_bytes = parse_num(arg, &take_value(&mut i)?)?,
            "--compact-after" => {
                config.compact_after_groups = parse_num(arg, &take_value(&mut i)?)?;
            }
            "--compact-bytes" => {
                config.compact_after_bytes = parse_num(arg, &take_value(&mut i)?)?;
            }
            "--compact-poll-ms" => {
                config.compact_poll_ms = parse_num(arg, &take_value(&mut i)?)?;
            }
            "--retry-backoff-ms" => {
                config.retry_backoff_ms = parse_num(arg, &take_value(&mut i)?)?;
            }
            "--retry-backoff-cap-ms" => {
                config.retry_backoff_cap_ms = parse_num(arg, &take_value(&mut i)?)?;
            }
            "--drain-ms" => config.drain_ms = parse_num(arg, &take_value(&mut i)?)?,
            "--repair" => repair = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => shard_paths.push(path.to_owned()),
        }
        i += 1;
    }
    if shard_paths.is_empty() {
        print_help();
        return Err("no shard files given".to_owned());
    }

    let shards = if repair {
        let (shards, repairs) =
            ShardSet::open_with_repair(&shard_paths).map_err(|e| format!("opening shards: {e}"))?;
        for r in &repairs {
            if r.report.is_torn() {
                eprintln!(
                    "joinmi_serve: repaired {}: dropped {} bytes ({} whole sections) after \
                     {} complete append group(s)",
                    r.path.display(),
                    r.report.dropped_bytes,
                    r.report.dropped_sections,
                    r.report.complete_groups,
                );
            }
        }
        shards
    } else {
        ShardSet::open(&shard_paths).map_err(|e| {
            format!("opening shards: {e} (a torn append tail can be repaired with --repair)")
        })?
    };

    eprintln!(
        "joinmi_serve: {} shard(s), {} candidates, generation 0x{:016x}",
        shards.shards().len(),
        shards.total_candidates(),
        shards.generation(),
    );
    let drain_ms = config.drain_ms;
    signal::install();
    let mut server = Server::start(config, shards).map_err(|e| format!("starting server: {e}"))?;
    eprintln!("joinmi_serve: listening on http://{}", server.local_addr());

    // Serve until signalled: the daemon has no privileged control endpoint,
    // so stop/restart is process lifecycle (see the runbook in
    // docs/SERVING.md). SIGTERM/SIGINT drains gracefully.
    loop {
        if signal::should_terminate() {
            eprintln!("joinmi_serve: termination signal; draining (budget {drain_ms} ms)");
            let drained = server.drain(Duration::from_millis(drain_ms));
            eprintln!(
                "joinmi_serve: {}; exiting",
                if drained {
                    "drained cleanly"
                } else {
                    "drain budget elapsed with queries still in flight"
                }
            );
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("flag '{flag}': invalid number '{value}'"))
}

fn print_help() {
    eprintln!(
        "usage: joinmi_serve [--addr HOST:PORT] [--workers N] [--timeout-ms N] \
         [--max-inflight N] [--cache N] [--cache-entries N] [--cache-bytes N] \
         [--compact-after N] [--compact-bytes N] [--compact-poll-ms N] \
         [--retry-backoff-ms N] [--retry-backoff-cap-ms N] [--drain-ms N] \
         [--repair] SHARD.jmi [SHARD.jmi ...]\n\
         Serves POST /v1/query, GET /v1/shards, GET /v1/healthz; SIGTERM \
         drains gracefully. Protocol spec and runbook: docs/SERVING.md"
    );
}
