//! The serving wire protocol: typed request/response structs and their JSON
//! encodings. The full specification (schemas, error codes, exactness
//! guarantees) lives in `docs/SERVING.md`; this module is its implementation.

use std::collections::BTreeMap;

use joinmi_discovery::{RankedCandidate, RelationshipQuery};
use joinmi_estimators::DEFAULT_K;
use joinmi_hash::murmur3_x64_128;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_table::Table;

use crate::json::{obj, Json};

/// Salt for query fingerprints, distinct from every other hash use in the
/// workspace.
const FINGERPRINT_SEED: u64 = 0x6A6D_6931_5155_5259; // "jmi1QURY"

/// A parsed `POST /v1/query` request.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Join-key column name of the query rows (always strings on the wire).
    pub key_column: String,
    /// Target column name of the query rows.
    pub target_column: String,
    /// The `(key, target)` rows of the query table.
    pub rows: Vec<(String, TargetValue)>,
    /// Maximum number of merged results (`0` = unlimited).
    pub top_k: usize,
    /// Minimum sketch-join size per candidate.
    pub min_join_size: usize,
    /// Minimum sampled-key overlap for the joinability pre-filter.
    pub min_key_overlap: usize,
    /// Sketching strategy (must match the shards').
    pub sketch_kind: SketchKind,
    /// Query-side sketch size (must match the shards').
    pub sketch_size: usize,
    /// Query-side sketch seed (must match the shards').
    pub sketch_seed: u64,
    /// Neighbour count for the KSG-family estimators (optional on the wire;
    /// defaults to the library's `DEFAULT_K`).
    pub k: usize,
    /// Whether the caller accepts a partial ranking when some shards are
    /// quarantined (`"partial": true` + `degraded_shards` in the response).
    /// Defaults to `false`: with a degraded shard the query fails with a
    /// typed 500 rather than silently returning fewer candidates.
    ///
    /// This is a delivery preference, not part of the query's identity — it
    /// is deliberately excluded from [`QueryRequest::canonical_json`] and the
    /// fingerprint, because only *complete* rankings are ever cached and a
    /// complete ranking is the same answer under either setting.
    pub allow_partial: bool,
    /// Two-sided credible-interval level in `(0, 1)`; `Some` switches the
    /// scoring engine to interval mode (`mi_var`/`ci_lo`/`ci_hi` on every
    /// result, early-terminating top-k). Unlike `allow_partial` this IS part
    /// of the query's identity — interval results carry fields point results
    /// do not — so it participates in [`QueryRequest::canonical_json`] and
    /// the fingerprint, and cached point and interval rankings never alias.
    pub confidence: Option<f64>,
}

/// A target cell: JSON integers become `Int` columns, JSON floats `Float`
/// columns. Rust's shortest-round-trip float formatting makes the float path
/// exact, so either way the daemon rebuilds the caller's column bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetValue {
    /// An integer target.
    Int(i64),
    /// A floating-point target.
    Float(f64),
}

/// A protocol-level request rejection (HTTP 400).
#[derive(Debug, Clone)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BadRequest {}

fn bad(message: impl Into<String>) -> BadRequest {
    BadRequest(message.into())
}

/// Upper bound on rows per query; guards the daemon against being handed a
/// whole table scan as a "query".
pub const MAX_QUERY_ROWS: usize = 1_000_000;

impl QueryRequest {
    /// Parses and validates a request body.
    pub fn from_json(body: &str) -> Result<Self, BadRequest> {
        let doc = Json::parse(body).map_err(|e| bad(e.to_string()))?;
        let Json::Obj(_) = &doc else {
            return Err(bad("request body must be a JSON object"));
        };

        let field_str = |key: &str| -> Result<String, BadRequest> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(format!("missing or non-string field '{key}'")))
        };
        let field_usize = |key: &str, default: usize| -> Result<usize, BadRequest> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_i64()
                    .and_then(|i| usize::try_from(i).ok())
                    .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer"))),
            }
        };
        let field_bool = |key: &str| -> Result<bool, BadRequest> {
            match doc.get(key) {
                None => Ok(false),
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(bad(format!("field '{key}' must be a boolean"))),
            }
        };

        let key_column = field_str("key_column")?;
        let target_column = field_str("target_column")?;
        if key_column == target_column {
            return Err(bad("key_column and target_column must differ"));
        }

        let sketch_kind = match doc.get("sketch_kind") {
            None => SketchKind::Tupsk,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| bad("field 'sketch_kind' must be a string"))?;
                SketchKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| bad(format!("unknown sketch_kind '{name}'")))?
            }
        };
        let sketch_seed = match doc.get("sketch_seed") {
            None => 0,
            Some(v) => v
                .as_i64()
                .map(|i| i as u64)
                .ok_or_else(|| bad("field 'sketch_seed' must be an integer"))?,
        };

        let rows_json = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing or non-array field 'rows'"))?;
        if rows_json.is_empty() {
            return Err(bad("'rows' must not be empty"));
        }
        if rows_json.len() > MAX_QUERY_ROWS {
            return Err(bad(format!(
                "'rows' holds {} entries, more than the {MAX_QUERY_ROWS} limit",
                rows_json.len()
            )));
        }
        let mut rows = Vec::with_capacity(rows_json.len());
        let mut saw_float = false;
        let mut saw_int = false;
        for (i, row) in rows_json.iter().enumerate() {
            let pair = row
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad(format!("row {i} must be a [key, target] pair")))?;
            let key = pair[0]
                .as_str()
                .ok_or_else(|| bad(format!("row {i}: key must be a string")))?;
            let target = match &pair[1] {
                Json::Int(v) => {
                    saw_int = true;
                    TargetValue::Int(*v)
                }
                Json::Float(v) => {
                    saw_float = true;
                    TargetValue::Float(*v)
                }
                _ => return Err(bad(format!("row {i}: target must be a number"))),
            };
            if saw_int && saw_float {
                return Err(bad(
                    "rows mix integer and float targets; a column has one type — \
                     send every target as a float (with a decimal point) instead",
                ));
            }
            rows.push((key.to_owned(), target));
        }

        let k = field_usize("k", DEFAULT_K)?;
        if k == 0 {
            return Err(bad("field 'k' must be at least 1"));
        }

        let confidence = match doc.get("confidence") {
            None => None,
            Some(v) => {
                let level = v
                    .as_f64()
                    .ok_or_else(|| bad("field 'confidence' must be a number"))?;
                if !(level > 0.0 && level < 1.0) {
                    return Err(bad(format!(
                        "field 'confidence' must be strictly between 0 and 1, got {level}"
                    )));
                }
                Some(level)
            }
        };

        Ok(Self {
            key_column,
            target_column,
            rows,
            top_k: field_usize("top_k", 10)?,
            min_join_size: field_usize("min_join_size", 20)?,
            min_key_overlap: field_usize("min_key_overlap", 1)?,
            sketch_kind,
            sketch_size: field_usize("sketch_size", 1024)?,
            sketch_seed,
            k,
            allow_partial: field_bool("allow_partial")?,
            confidence,
        })
    }

    /// Canonical JSON encoding of the request — every query-identity field
    /// explicit, keys sorted. Two requests that mean the same query encode
    /// identically, which is what the result cache fingerprints.
    /// `allow_partial` is excluded (see its field docs): it changes how a
    /// degraded answer is delivered, not what the answer is.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|(key, target)| {
                let t = match target {
                    TargetValue::Int(i) => Json::Int(*i),
                    TargetValue::Float(f) => Json::Float(*f),
                };
                Json::Arr(vec![Json::Str(key.clone()), t])
            })
            .collect();
        let mut doc = obj([
            ("key_column", Json::Str(self.key_column.clone())),
            ("target_column", Json::Str(self.target_column.clone())),
            ("rows", Json::Arr(rows)),
            ("top_k", Json::Int(self.top_k as i64)),
            ("min_join_size", Json::Int(self.min_join_size as i64)),
            ("min_key_overlap", Json::Int(self.min_key_overlap as i64)),
            ("sketch_kind", Json::Str(self.sketch_kind.name().to_owned())),
            ("sketch_size", Json::Int(self.sketch_size as i64)),
            ("sketch_seed", Json::Int(self.sketch_seed as i64)),
            ("k", Json::Int(self.k as i64)),
        ]);
        // Interval scoring changes what the results contain, so the level is
        // part of the query's identity; an absent field means point scoring
        // (the canonical spelling — there is no explicit "point" value).
        if let (Json::Obj(map), Some(level)) = (&mut doc, self.confidence) {
            map.insert("confidence".to_owned(), Json::Float(level));
        }
        doc.encode()
    }

    /// 128-bit fingerprint of the canonical encoding, for cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> (u64, u64) {
        murmur3_x64_128(self.canonical_json().as_bytes(), FINGERPRINT_SEED)
    }

    /// Builds the in-memory query table the discovery layer expects.
    pub fn to_table(&self) -> Result<Table, BadRequest> {
        let keys = self.rows.iter().map(|(k, _)| k.clone());
        let builder = Table::builder("query").push_str_column(&self.key_column, keys);
        let builder = match self.rows.first() {
            Some((_, TargetValue::Int(_))) => builder.push_int_column(
                &self.target_column,
                self.rows.iter().map(|(_, t)| match t {
                    TargetValue::Int(i) => *i,
                    TargetValue::Float(_) => unreachable!("mixed targets rejected at parse"),
                }),
            ),
            _ => builder.push_float_column(
                &self.target_column,
                self.rows.iter().map(|(_, t)| match t {
                    TargetValue::Float(f) => *f,
                    TargetValue::Int(i) => *i as f64,
                }),
            ),
        };
        builder.build().map_err(|e| bad(e.to_string()))
    }

    /// Lowers the request into a [`RelationshipQuery`] against one shard.
    pub fn to_query(&self) -> Result<RelationshipQuery, BadRequest> {
        let table = self.to_table()?;
        let mut query = RelationshipQuery::new(table, &self.key_column, &self.target_column)
            .with_top_k(self.top_k)
            .with_min_join_size(self.min_join_size)
            .with_sketch(
                self.sketch_kind,
                SketchConfig::new(self.sketch_size, self.sketch_seed),
            )
            .with_k(self.k);
        if let Some(level) = self.confidence {
            query = query.with_confidence(level);
        }
        query.min_key_overlap = self.min_key_overlap;
        Ok(query)
    }
}

/// One merged result row: a [`RankedCandidate`] plus its shard coordinates.
#[derive(Debug, Clone)]
pub struct ShardedResult {
    /// Index of the owning shard (position in the daemon's shard list).
    pub shard: usize,
    /// Candidate index *within* that shard.
    pub shard_candidate_index: usize,
    /// Global candidate index: shard candidate-count offset + local index.
    /// Equals the single-repository index when tables are partitioned
    /// contiguously across shards in order.
    pub global_candidate_index: usize,
    /// The scored candidate (its `candidate_index` field is shard-local).
    pub candidate: RankedCandidate,
}

impl ShardedResult {
    /// Encodes one result row. Interval-scored results additionally carry
    /// `mi_var`, `ci_lo`, `ci_hi` (plus `ci_lo_bits`/`ci_hi_bits` hex
    /// spellings, the exactness companions of `mi_bits`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let c = &self.candidate;
        let mut doc = obj([
            ("shard", Json::Int(self.shard as i64)),
            (
                "shard_candidate_index",
                Json::Int(self.shard_candidate_index as i64),
            ),
            (
                "candidate_index",
                Json::Int(self.global_candidate_index as i64),
            ),
            ("table", Json::Str(c.table_name.clone())),
            ("key_column", Json::Str(c.key_column.clone())),
            ("feature_column", Json::Str(c.feature_column.clone())),
            ("aggregation", Json::Str(c.aggregation.name().to_owned())),
            ("estimator", Json::Str(c.estimator.name().to_owned())),
            ("mi", Json::Float(c.mi)),
            ("mi_bits", Json::Str(format!("0x{:016x}", c.mi.to_bits()))),
            ("join_size", Json::Int(c.sketch_join_size as i64)),
            ("key_overlap", Json::Int(c.key_overlap as i64)),
        ]);
        if let (Json::Obj(map), Some(iv)) = (&mut doc, &c.interval) {
            map.insert("mi_var".to_owned(), Json::Float(iv.variance));
            map.insert("ci_lo".to_owned(), Json::Float(iv.ci_lo));
            map.insert("ci_hi".to_owned(), Json::Float(iv.ci_hi));
            map.insert(
                "ci_lo_bits".to_owned(),
                Json::Str(format!("0x{:016x}", iv.ci_lo.to_bits())),
            );
            map.insert(
                "ci_hi_bits".to_owned(),
                Json::Str(format!("0x{:016x}", iv.ci_hi.to_bits())),
            );
        }
        doc
    }
}

/// The `POST /v1/query` success payload.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Merged, globally ranked results.
    pub results: Vec<ShardedResult>,
    /// Number of shards the query ran against.
    pub shards_queried: usize,
    /// Snapshot generation the results were computed under.
    pub generation: u64,
    /// Whether the response came from the result cache.
    pub cached: bool,
    /// Whether any shard was skipped; `true` only ever reaches the wire when
    /// the request opted in with `allow_partial`. Partial rankings are never
    /// cached.
    pub partial: bool,
    /// Indices of the shards that did not contribute (quarantined before the
    /// query, or failed while scoring it). Empty when `partial` is `false`.
    pub degraded_shards: Vec<usize>,
}

impl QueryResponse {
    /// Encodes the payload.
    #[must_use]
    pub fn to_json(&self) -> Json {
        obj([
            (
                "results",
                Json::Arr(self.results.iter().map(ShardedResult::to_json).collect()),
            ),
            ("shards_queried", Json::Int(self.shards_queried as i64)),
            (
                "generation",
                Json::Str(format!("0x{:016x}", self.generation)),
            ),
            ("cached", Json::Bool(self.cached)),
            ("partial", Json::Bool(self.partial)),
            (
                "degraded_shards",
                Json::Arr(
                    self.degraded_shards
                        .iter()
                        .map(|s| Json::Int(*s as i64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Typed protocol errors, each mapping to one HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// 400 — malformed or invalid request.
    BadRequest(String),
    /// 404 — unknown path.
    NotFound,
    /// 405 — known path, wrong method.
    MethodNotAllowed,
    /// 429 — admission limit reached; retry later.
    Overloaded {
        /// The daemon's in-flight limit that was hit.
        max_inflight: usize,
    },
    /// 504 — the per-query wall-clock budget elapsed.
    Timeout {
        /// The budget that elapsed, in milliseconds.
        timeout_ms: u64,
    },
    /// 500 — the query panicked inside the scoring engine. The worker that
    /// ran it survived (panic isolation) and rebuilt its workspace; the
    /// daemon keeps serving.
    QueryPanicked,
    /// 500 — one or more shards are degraded and the request did not opt in
    /// to a partial ranking with `allow_partial`.
    Degraded {
        /// Indices of the shards that could not contribute.
        shards: Vec<usize>,
    },
    /// 503 — the daemon is draining for shutdown and no longer admits
    /// queries.
    Draining,
    /// 500 — the query failed inside the engine.
    Internal(String),
}

impl ServeError {
    /// The HTTP status line for this error.
    #[must_use]
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            Self::BadRequest(_) => (400, "Bad Request"),
            Self::NotFound => (404, "Not Found"),
            Self::MethodNotAllowed => (405, "Method Not Allowed"),
            Self::Overloaded { .. } => (429, "Too Many Requests"),
            Self::Timeout { .. } => (504, "Gateway Timeout"),
            Self::QueryPanicked | Self::Degraded { .. } | Self::Internal(_) => {
                (500, "Internal Server Error")
            }
            Self::Draining => (503, "Service Unavailable"),
        }
    }

    /// The machine-readable error code carried in the body.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            Self::BadRequest(_) => "bad_request",
            Self::NotFound => "not_found",
            Self::MethodNotAllowed => "method_not_allowed",
            Self::Overloaded { .. } => "overloaded",
            Self::Timeout { .. } => "timeout",
            Self::QueryPanicked => "panic",
            Self::Degraded { .. } => "degraded",
            Self::Draining => "draining",
            Self::Internal(_) => "internal",
        }
    }

    /// Encodes the error payload.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let message = match self {
            Self::BadRequest(m) | Self::Internal(m) => m.clone(),
            Self::NotFound => "unknown path".to_owned(),
            Self::MethodNotAllowed => "method not allowed for this path".to_owned(),
            Self::Overloaded { max_inflight } => {
                format!("query admission limit of {max_inflight} in-flight queries reached")
            }
            Self::Timeout { timeout_ms } => {
                format!("query exceeded its {timeout_ms} ms wall-clock budget")
            }
            Self::QueryPanicked => {
                "the query panicked inside the scoring engine; the worker recovered and \
                 the daemon keeps serving"
                    .to_owned()
            }
            Self::Degraded { shards } => {
                let list: Vec<String> = shards.iter().map(ToString::to_string).collect();
                format!(
                    "shard(s) [{}] are degraded; retry once restored, or resend with \
                     \"allow_partial\": true to accept a partial ranking",
                    list.join(", ")
                )
            }
            Self::Draining => "the daemon is draining for shutdown".to_owned(),
        };
        let mut err = BTreeMap::new();
        err.insert("code".to_owned(), Json::Str(self.code().to_owned()));
        err.insert("message".to_owned(), Json::Str(message));
        obj([("error", Json::Obj(err))])
    }
}

impl From<BadRequest> for ServeError {
    fn from(e: BadRequest) -> Self {
        Self::BadRequest(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_body() -> String {
        r#"{
            "key_column": "zip",
            "target_column": "trips",
            "rows": [["10001", 3], ["10002", 9]]
        }"#
        .to_owned()
    }

    #[test]
    fn minimal_request_gets_documented_defaults() {
        let req = QueryRequest::from_json(&minimal_body()).unwrap();
        assert_eq!(req.top_k, 10);
        assert_eq!(req.min_join_size, 20);
        assert_eq!(req.min_key_overlap, 1);
        assert_eq!(req.sketch_kind, SketchKind::Tupsk);
        assert_eq!(req.sketch_size, 1024);
        assert_eq!(req.sketch_seed, 0);
        assert_eq!(req.k, DEFAULT_K);
        assert_eq!(req.rows.len(), 2);
        assert_eq!(req.rows[0], ("10001".to_owned(), TargetValue::Int(3)));
    }

    #[test]
    fn k_is_optional_threaded_and_fingerprinted() {
        let body = r#"{
            "key_column": "zip", "target_column": "trips",
            "rows": [["10001", 3]], "k": 7
        }"#;
        let req = QueryRequest::from_json(body).unwrap();
        assert_eq!(req.k, 7);
        assert_eq!(req.to_query().unwrap().k, 7);

        // Different k means a different query — the fingerprint must move.
        let default_k = QueryRequest::from_json(
            r#"{"key_column": "zip", "target_column": "trips", "rows": [["10001", 3]]}"#,
        )
        .unwrap();
        assert_ne!(req.fingerprint(), default_k.fingerprint());

        // Explicit default k fingerprints the same as omitting it.
        let explicit = QueryRequest::from_json(
            r#"{"key_column": "zip", "target_column": "trips", "rows": [["10001", 3]], "k": 3}"#,
        )
        .unwrap();
        assert_eq!(explicit.fingerprint(), default_k.fingerprint());

        for bad in [
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "k": 0}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "k": -2}"#,
        ] {
            assert!(QueryRequest::from_json(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_content_sensitive() {
        let a = QueryRequest::from_json(&minimal_body()).unwrap();
        let reordered = r#"{
            "rows": [["10001", 3], ["10002", 9]],
            "target_column": "trips",
            "key_column": "zip",
            "top_k": 10
        }"#;
        let b = QueryRequest::from_json(reordered).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = a.clone();
        c.rows[1].1 = TargetValue::Int(10);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.top_k = 5;
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn tables_rebuild_with_exact_types() {
        let req = QueryRequest::from_json(&minimal_body()).unwrap();
        let table = req.to_table().unwrap();
        assert_eq!(table.num_rows(), 2);
        assert_eq!(
            table.value(0, "trips").unwrap(),
            joinmi_table::Value::Int(3)
        );

        let float_body = r#"{
            "key_column": "zip", "target_column": "t",
            "rows": [["a", 1.5], ["b", 0.25]]
        }"#;
        let req = QueryRequest::from_json(float_body).unwrap();
        let table = req.to_table().unwrap();
        assert_eq!(
            table.value(1, "t").unwrap(),
            joinmi_table::Value::Float(0.25)
        );
    }

    #[test]
    fn invalid_requests_are_typed_rejections() {
        for bad in [
            "not json",
            "[]",
            r#"{"key_column": "k", "target_column": "k", "rows": [["a", 1]]}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": []}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1], ["b", 2.5]]}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", "x"]]}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "top_k": -1}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "sketch_kind": "nope"}"#,
        ] {
            assert!(QueryRequest::from_json(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn sketch_kind_names_parse_case_insensitively() {
        let body = r#"{
            "key_column": "k", "target_column": "t",
            "rows": [["a", 1]], "sketch_kind": "lv2sk"
        }"#;
        let req = QueryRequest::from_json(body).unwrap();
        assert_eq!(req.sketch_kind, SketchKind::Lv2sk);
    }

    #[test]
    fn error_payloads_carry_status_and_code() {
        let e = ServeError::Overloaded { max_inflight: 4 };
        assert_eq!(e.status().0, 429);
        let encoded = e.to_json().encode();
        assert!(encoded.contains("\"code\":\"overloaded\""));
        let e = ServeError::Timeout { timeout_ms: 50 };
        assert_eq!(e.status().0, 504);
        assert!(e.to_json().encode().contains("timeout"));

        let e = ServeError::QueryPanicked;
        assert_eq!(e.status().0, 500);
        assert!(e.to_json().encode().contains("\"code\":\"panic\""));
        let e = ServeError::Degraded { shards: vec![1, 2] };
        assert_eq!(e.status().0, 500);
        let encoded = e.to_json().encode();
        assert!(encoded.contains("\"code\":\"degraded\""));
        assert!(
            encoded.contains("[1, 2]"),
            "message lists the shards: {encoded}"
        );
        assert!(
            encoded.contains("allow_partial"),
            "message names the opt-in"
        );
        let e = ServeError::Draining;
        assert_eq!(e.status().0, 503);
        assert!(e.to_json().encode().contains("\"code\":\"draining\""));
    }

    #[test]
    fn allow_partial_parses_but_does_not_move_the_fingerprint() {
        let strict = QueryRequest::from_json(&minimal_body()).unwrap();
        assert!(!strict.allow_partial, "defaults to strict");

        let body = r#"{
            "key_column": "zip", "target_column": "trips",
            "rows": [["10001", 3], ["10002", 9]], "allow_partial": true
        }"#;
        let partial = QueryRequest::from_json(body).unwrap();
        assert!(partial.allow_partial);
        // A delivery preference, not query identity: cached complete
        // rankings must serve both settings.
        assert_eq!(strict.fingerprint(), partial.fingerprint());

        let bad = r#"{
            "key_column": "zip", "target_column": "trips",
            "rows": [["10001", 3]], "allow_partial": "yes"
        }"#;
        assert!(QueryRequest::from_json(bad).is_err(), "non-bool rejected");
    }

    #[test]
    fn confidence_parses_validates_and_moves_the_fingerprint() {
        let point = QueryRequest::from_json(&minimal_body()).unwrap();
        assert!(point.confidence.is_none(), "defaults to point scoring");

        let body = r#"{
            "key_column": "zip", "target_column": "trips",
            "rows": [["10001", 3], ["10002", 9]], "confidence": 0.9
        }"#;
        let interval = QueryRequest::from_json(body).unwrap();
        assert_eq!(interval.confidence, Some(0.9));
        // Unlike allow_partial, interval scoring IS query identity: point
        // and interval results must never share a cache slot.
        assert_ne!(point.fingerprint(), interval.fingerprint());
        assert!(matches!(
            interval.to_query().unwrap().policy,
            joinmi_discovery::ScoringPolicy::Interval { level } if level == 0.9
        ));
        assert!(matches!(
            point.to_query().unwrap().policy,
            joinmi_discovery::ScoringPolicy::Point
        ));

        for bad in [
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "confidence": 0.0}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "confidence": 1.0}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "confidence": -0.5}"#,
            r#"{"key_column": "k", "target_column": "t", "rows": [["a", 1]], "confidence": "high"}"#,
        ] {
            assert!(QueryRequest::from_json(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn responses_carry_partial_and_degraded_shards() {
        let full = QueryResponse {
            results: Vec::new(),
            shards_queried: 3,
            generation: 7,
            cached: false,
            partial: false,
            degraded_shards: Vec::new(),
        };
        let encoded = full.to_json().encode();
        assert!(encoded.contains("\"partial\":false"));
        assert!(encoded.contains("\"degraded_shards\":[]"));

        let partial = QueryResponse {
            degraded_shards: vec![0, 2],
            partial: true,
            ..full
        };
        let encoded = partial.to_json().encode();
        assert!(encoded.contains("\"partial\":true"));
        assert!(encoded.contains("\"degraded_shards\":[0,2]"));
    }
}
