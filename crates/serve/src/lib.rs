//! The `joinmi` serving layer: a long-lived, sharded discovery daemon.
//!
//! Everything below this crate is a library: sketches are built offline
//! ([`joinmi_discovery::TableRepository`] → `save`), reopened cheaply
//! (`load_mmap_like`), extended in place (`append_to`), and queried
//! bit-deterministically ([`joinmi_discovery::RelationshipQuery`]). This
//! crate is the piece that turns those parts into the interactive
//! data-discovery *service* the paper's end goal describes: a daemon that
//! holds N shard repositories open and answers "which candidate columns are
//! most informative about my target?" over REST in milliseconds, because
//! every expensive artifact was built before the query arrived.
//!
//! # Architecture
//!
//! ```text
//! client ──HTTP/1.1──► acceptor ──► connection thread (parse, route, cache)
//!                                        │ POST /v1/query
//!                                        ▼
//!                                   job channel ──► worker pool
//!                                                   (one EstimatorWorkspace
//!                                                    per worker, reused
//!                                                    across all queries)
//!                                                        │
//!                                          shard 0 … shard N−1 snapshots
//!                                          (execute_in per shard, then a
//!                                           deterministic global merge)
//! ```
//!
//! * [`shard::ShardSet`] opens N repository files as read-only snapshots
//!   (optionally repairing torn append tails first) and merges per-shard
//!   rankings into a global top-k that is **bit-for-bit identical** to
//!   querying one repository holding every table — see the module docs for
//!   why the merge is exact.
//! * [`server::Server`] is the daemon: `POST /v1/query`, `GET /v1/shards`,
//!   `GET /v1/healthz`, speaking the JSON protocol specified in
//!   `docs/SERVING.md`.
//! * [`guard`] holds the production guardrails: a per-query wall-clock
//!   [`guard::Deadline`], an [`guard::AdmissionGate`] bounding in-flight
//!   queries (typed 429 rejection, never an unbounded queue), a bounded
//!   LRU [`guard::QueryCache`] keyed by (query fingerprint, snapshot
//!   generation) so append epochs invalidate cached rankings implicitly,
//!   plus the failure-handling primitives — capped jittered [`guard::Backoff`]
//!   and the per-shard [`guard::ShardHealth`] circuit breaker.
//! * The daemon **degrades instead of dying**: workers isolate query panics
//!   behind `catch_unwind` (typed 500, counter on `/v1/shards`), failing
//!   shards are quarantined and served around (`allow_partial` opts into a
//!   partial ranking; default is a strict 500) while a backoff loop reopens
//!   them, and SIGTERM drains in-flight queries before exit. See
//!   "Failure modes & degraded serving" in `docs/SERVING.md`.
//! * [`json`] and [`http`] are hand-rolled minimal implementations over
//!   `std`, like the rest of the workspace: the build is offline, so no
//!   serde, no hyper — and nothing this protocol does not need.
//!
//! # Exactness on the wire
//!
//! The response carries each result's MI twice: as a JSON float (shortest
//! round-trip formatting, exact for Rust readers) and as `mi_bits`, the hex
//! IEEE-754 bit pattern. CI compares a 3-shard REST query against the same
//! corpus queried in process through `mi_bits`, pinning the whole stack —
//! JSON, HTTP, sharding, merge — to bit-for-bit agreement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A daemon must not die on a recoverable edge: every unwrap/expect in this
// crate is either converted to a typed error, poison-stripped
// (`unwrap_or_else(PoisonError::into_inner)`), or explicitly allow-listed as
// infallible at the call site. CI runs clippy with `-D warnings`, so these
// are errors in practice.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod guard;
pub mod http;
pub mod json;
pub mod server;
pub mod shard;
pub mod wire;

pub use guard::{AdmissionGate, Backoff, Deadline, QueryCache, ShardHealth};
pub use http::client_request;
pub use server::{wait_healthy, Server, ServerConfig};
pub use shard::{ExecuteOutcome, Shard, ShardRepair, ShardSet};
pub use wire::{QueryRequest, QueryResponse, ServeError, ShardedResult, TargetValue};
