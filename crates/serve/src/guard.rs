//! Production guardrails: per-query deadlines, an admission gate bounding
//! in-flight queries, a bounded LRU result cache keyed by query fingerprint
//! **and** shard snapshot generation (so append epochs invalidate stale
//! entries without any explicit flush), plus the failure-handling primitives
//! — capped jittered exponential [`Backoff`] and the per-shard
//! [`ShardHealth`] circuit breaker the daemon's quarantine/reopen loop runs
//! on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use joinmi_hash::SplitMix64;

use crate::wire::ShardedResult;

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

/// A per-query wall-clock budget. `timeout_ms = 0` disables the deadline —
/// useful for drain-style maintenance queries and deterministic tests.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    expires_at: Option<Instant>,
}

impl Deadline {
    /// Starts the clock now with a budget of `timeout_ms` milliseconds.
    #[must_use]
    pub fn starting_now(timeout_ms: u64) -> Self {
        Self {
            expires_at: (timeout_ms > 0)
                .then(|| Instant::now() + Duration::from_millis(timeout_ms)),
        }
    }

    /// A deadline that never expires.
    #[must_use]
    pub fn unlimited() -> Self {
        Self { expires_at: None }
    }

    /// Whether the budget has elapsed. Checked cooperatively between shards;
    /// a query is never pre-empted mid-estimate.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.expires_at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left, when a deadline is set.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

// ---------------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------------

/// Bounds the number of queries in flight. `max_inflight = 0` means
/// unlimited. Rejection is immediate and typed (HTTP 429) — the daemon sheds
/// load instead of queueing unboundedly.
#[derive(Debug)]
pub struct AdmissionGate {
    max_inflight: usize,
    inflight: AtomicUsize,
}

impl AdmissionGate {
    /// Creates a gate admitting at most `max_inflight` concurrent queries.
    #[must_use]
    pub fn new(max_inflight: usize) -> Self {
        Self {
            max_inflight,
            inflight: AtomicUsize::new(0),
        }
    }

    /// The configured limit (0 = unlimited).
    #[must_use]
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Current number of admitted queries.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Tries to admit one query; `None` means the limit is reached and the
    /// caller must reject. The returned permit releases the slot on drop.
    #[must_use]
    pub fn try_acquire(&self) -> Option<AdmissionPermit<'_>> {
        if self.max_inflight == 0 {
            return Some(AdmissionPermit { gate: None });
        }
        let mut current = self.inflight.load(Ordering::SeqCst);
        loop {
            if current >= self.max_inflight {
                return None;
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(AdmissionPermit { gate: Some(self) }),
                Err(actual) => current = actual,
            }
        }
    }
}

/// An admitted query's slot; releases it on drop.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: Option<&'a AdmissionGate>,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            gate.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// The cache key: 128-bit query fingerprint plus the shard snapshot
/// generation the result was computed under. A reload after an append
/// changes the generation, so every pre-append entry silently stops
/// matching — bounded staleness without epochs or TTLs.
pub type CacheKey = (u64, u64, u64);

/// A cached merged ranking.
#[derive(Debug)]
pub struct CachedResult {
    /// The merged, globally ranked results.
    pub results: Arc<Vec<ShardedResult>>,
    /// Number of shards that produced them.
    pub shards_queried: usize,
}

/// A bounded LRU cache of merged query results. `capacity = 0` disables
/// caching. Eviction is strict LRU on read *and* write.
///
/// The implementation favours obviousness over asymptotics: recency is a
/// monotonic tick per entry and eviction scans for the minimum. Capacities
/// are daemon-config-sized (tens to thousands), where the O(capacity) scan
/// is noise next to a single sketch join.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<CacheKey, (u64, Arc<CachedResult>)>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` rankings.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configured capacity (0 = disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up a ranking, refreshing its recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((tick, value)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(Arc::clone(value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a ranking, evicting the least recently used entry when full.
    pub fn insert(&mut self, key: CacheKey, value: Arc<CachedResult>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, value));
    }
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Capped, jittered, counted exponential backoff for background retries
/// (quarantine reopens, failed compactions). The jitter is **deterministic**
/// — a [`SplitMix64`] mix of the seed and the failure count — so tests and
/// the chaos sweep replay identical schedules, while distinct seeds (one per
/// shard) still de-correlate retry storms.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    seed: u64,
    failures: u64,
    not_before: Option<Instant>,
}

impl Backoff {
    /// Creates a backoff starting at `base_ms` (clamped to ≥ 1) and capped at
    /// `cap_ms` per wait; `seed` keys the deterministic jitter.
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        Self {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            seed,
            failures: 0,
            not_before: None,
        }
    }

    /// Consecutive failures since the last [`Backoff::reset`].
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Whether enough time has passed to try again. `true` before the first
    /// failure.
    #[must_use]
    pub fn ready(&self) -> bool {
        !self.not_before.is_some_and(|at| Instant::now() < at)
    }

    /// Records a failure: bumps the counter and pushes the next retry out by
    /// [`Backoff::delay_ms`].
    pub fn record_failure(&mut self) {
        self.failures += 1;
        self.not_before = Some(Instant::now() + Duration::from_millis(self.delay_ms()));
    }

    /// The wait imposed by the current failure count: `base · 2^(n−1)` capped
    /// at `cap_ms`, plus up to 25% deterministic jitter (also capped). Pure —
    /// the same counter and seed always produce the same delay.
    #[must_use]
    pub fn delay_ms(&self) -> u64 {
        if self.failures == 0 {
            return 0;
        }
        let exponent = (self.failures - 1).min(32) as u32;
        let raw = self
            .base_ms
            .saturating_mul(1u64 << exponent)
            .min(self.cap_ms);
        // Jitter in [0, raw/4): mix(seed, failures) keeps it reproducible.
        let mix = SplitMix64::mix(self.seed ^ SplitMix64::mix(self.failures));
        let jitter = (raw / 4).saturating_mul(mix % 1024) / 1024;
        raw.saturating_add(jitter).min(self.cap_ms)
    }

    /// Clears the failure count and the wait after a success.
    pub fn reset(&mut self) {
        self.failures = 0;
        self.not_before = None;
    }
}

// ---------------------------------------------------------------------------
// Shard health (circuit breaker)
// ---------------------------------------------------------------------------

/// Per-shard circuit breaker: a quarantine flag the query path checks
/// lock-free, lifetime failure counters surfaced on `GET /v1/shards`, and
/// the two backoff schedules the guardian thread consults (reopening a
/// quarantined shard, retrying a failed compaction).
///
/// Lifecycle: a decode/IO failure while scoring trips
/// [`ShardHealth::quarantine`]; queries then skip the shard (partial or
/// strict-500 per `allow_partial`); the guardian retries
/// [`crate::shard::ShardSet::with_reloaded_shard`] on the reopen schedule and
/// [`ShardHealth::restore`] puts the shard back in rotation.
#[derive(Debug)]
pub struct ShardHealth {
    quarantined: AtomicBool,
    failures: AtomicU64,
    reopen_attempts: AtomicU64,
    compact_failures: AtomicU64,
    reopen: Mutex<Backoff>,
    compact: Mutex<Backoff>,
}

impl ShardHealth {
    /// Creates a healthy shard's breaker with both backoff schedules keyed by
    /// `seed` (derive one seed per shard index).
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Self {
            quarantined: AtomicBool::new(false),
            failures: AtomicU64::new(0),
            reopen_attempts: AtomicU64::new(0),
            compact_failures: AtomicU64::new(0),
            reopen: Mutex::new(Backoff::new(base_ms, cap_ms, seed)),
            compact: Mutex::new(Backoff::new(base_ms, cap_ms, SplitMix64::mix(seed))),
        }
    }

    /// Whether the shard is currently out of rotation.
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::SeqCst)
    }

    /// Trips the breaker: the shard leaves rotation and the first reopen
    /// attempt is scheduled one backoff step out. Idempotent; every call
    /// counts a failure.
    pub fn quarantine(&self) {
        self.failures.fetch_add(1, Ordering::SeqCst);
        self.quarantined.store(true, Ordering::SeqCst);
        self.lock_reopen().record_failure();
    }

    /// Puts the shard back in rotation and clears the reopen schedule.
    pub fn restore(&self) {
        self.quarantined.store(false, Ordering::SeqCst);
        self.lock_reopen().reset();
    }

    /// Whether the reopen schedule allows an attempt right now.
    #[must_use]
    pub fn reopen_ready(&self) -> bool {
        self.lock_reopen().ready()
    }

    /// Counts a reopen attempt (before trying, so `/v1/shards` shows stuck
    /// reopens climbing).
    pub fn record_reopen_attempt(&self) {
        self.reopen_attempts.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a failed reopen: the next attempt moves out exponentially.
    pub fn reopen_failed(&self) {
        self.lock_reopen().record_failure();
    }

    /// Whether the compaction-retry schedule allows an attempt right now.
    #[must_use]
    pub fn compact_ready(&self) -> bool {
        self.lock_compact().ready()
    }

    /// Records a failed compaction; retries back off exponentially instead
    /// of re-firing every poll.
    pub fn compact_failed(&self) {
        self.compact_failures.fetch_add(1, Ordering::SeqCst);
        self.lock_compact().record_failure();
    }

    /// Clears the compaction-retry schedule after a successful compaction.
    pub fn compact_succeeded(&self) {
        self.lock_compact().reset();
    }

    /// Lifetime scoring/decode failures that tripped (or re-tripped) the
    /// breaker.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::SeqCst)
    }

    /// Lifetime reopen attempts the guardian has made.
    #[must_use]
    pub fn reopen_attempts(&self) -> u64 {
        self.reopen_attempts.load(Ordering::SeqCst)
    }

    /// Lifetime failed compactions of this shard.
    #[must_use]
    pub fn compact_failures(&self) -> u64 {
        self.compact_failures.load(Ordering::SeqCst)
    }

    fn lock_reopen(&self) -> std::sync::MutexGuard<'_, Backoff> {
        // A Backoff is a plain value; a panicked peer cannot leave it in a
        // broken intermediate state, so poison is safe to strip.
        self.reopen.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_compact(&self) -> std::sync::MutexGuard<'_, Backoff> {
        self.compact.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Arc<CachedResult> {
        Arc::new(CachedResult {
            results: Arc::new(Vec::new()),
            shards_queried: 1,
        })
    }

    #[test]
    fn zero_timeout_never_expires() {
        let d = Deadline::starting_now(0);
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(!Deadline::unlimited().expired());
    }

    #[test]
    fn elapsed_deadline_expires() {
        let d = Deadline::starting_now(1);
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn gate_admits_up_to_the_limit_and_releases_on_drop() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "limit reached");
        assert_eq!(gate.inflight(), 2);
        drop(a);
        assert_eq!(gate.inflight(), 1);
        let _c = gate.try_acquire().expect("slot freed by drop");
    }

    #[test]
    fn unlimited_gate_never_rejects() {
        let gate = AdmissionGate::new(0);
        let permits: Vec<_> = (0..64).map(|_| gate.try_acquire().unwrap()).collect();
        assert_eq!(gate.inflight(), 0, "unlimited gate does not count");
        drop(permits);
    }

    #[test]
    fn cache_is_lru_with_recency_refresh_on_get() {
        let mut cache = QueryCache::new(2);
        cache.insert((1, 1, 0), entry());
        cache.insert((2, 2, 0), entry());
        // Touch (1,1,0) so (2,2,0) becomes the LRU victim.
        assert!(cache.get(&(1, 1, 0)).is_some());
        cache.insert((3, 3, 0), entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(1, 1, 0)).is_some());
        assert!(cache.get(&(2, 2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&(3, 3, 0)).is_some());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (3, 1));
    }

    #[test]
    fn generation_change_is_a_cache_miss() {
        let mut cache = QueryCache::new(8);
        cache.insert((7, 7, 1), entry());
        assert!(cache.get(&(7, 7, 1)).is_some());
        // Same query fingerprint, new snapshot generation: miss.
        assert!(cache.get(&(7, 7, 2)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = QueryCache::new(0);
        cache.insert((1, 2, 3), entry());
        assert!(cache.is_empty());
        assert!(cache.get(&(1, 2, 3)).is_none());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = QueryCache::new(2);
        cache.insert((1, 1, 0), entry());
        cache.insert((2, 2, 0), entry());
        cache.insert((1, 1, 0), entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(2, 2, 0)).is_some());
    }

    #[test]
    fn backoff_grows_exponentially_caps_and_jitters_deterministically() {
        let mut b = Backoff::new(100, 2_000, 42);
        assert!(b.ready(), "ready before any failure");
        assert_eq!(b.delay_ms(), 0);

        let mut delays = Vec::new();
        for _ in 0..8 {
            b.record_failure();
            delays.push(b.delay_ms());
        }
        // Exponential base doubles until the cap; jitter adds at most 25%.
        for (i, &d) in delays.iter().enumerate() {
            let raw = (100u64 << i.min(32)).min(2_000);
            assert!(d >= raw, "failure {i}: {d} below raw {raw}");
            assert!(
                d <= (raw + raw / 4).min(2_000),
                "failure {i}: {d} over jitter bound"
            );
        }
        assert!(
            delays[5..].iter().all(|&d| d == 2_000),
            "cap reached: {delays:?}"
        );
        assert!(!b.ready(), "a 2s wait is pending");
        assert_eq!(b.failures(), 8);

        // Deterministic: a fresh backoff with the same seed replays the
        // exact same schedule; a different seed jitters differently.
        let mut same = Backoff::new(100, 2_000, 42);
        let mut other = Backoff::new(100, 2_000, 43);
        let mut same_delays = Vec::new();
        let mut other_delays = Vec::new();
        for _ in 0..8 {
            same.record_failure();
            other.record_failure();
            same_delays.push(same.delay_ms());
            other_delays.push(other.delay_ms());
        }
        assert_eq!(delays, same_delays);
        assert_ne!(delays, other_delays, "different seeds must de-correlate");

        b.reset();
        assert!(b.ready());
        assert_eq!(b.failures(), 0);
        assert_eq!(b.delay_ms(), 0);
    }

    #[test]
    fn shard_health_quarantine_lifecycle() {
        let health = ShardHealth::new(1, 10, 7);
        assert!(!health.is_quarantined());
        assert!(health.reopen_ready());

        health.quarantine();
        assert!(health.is_quarantined());
        assert_eq!(health.failures(), 1);
        // The first reopen is one backoff step out, not immediate.
        std::thread::sleep(Duration::from_millis(5));
        assert!(health.reopen_ready(), "1ms base elapsed");
        health.record_reopen_attempt();
        health.reopen_failed();
        assert_eq!(health.reopen_attempts(), 1);

        health.restore();
        assert!(!health.is_quarantined());
        assert!(health.reopen_ready(), "restore clears the schedule");
        assert_eq!(health.failures(), 1, "lifetime counter survives restore");

        health.compact_failed();
        assert_eq!(health.compact_failures(), 1);
        health.compact_succeeded();
        assert!(health.compact_ready());
    }
}
