//! Production guardrails: per-query deadlines, an admission gate bounding
//! in-flight queries, and a bounded LRU result cache keyed by query
//! fingerprint **and** shard snapshot generation (so append epochs invalidate
//! stale entries without any explicit flush).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::wire::ShardedResult;

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

/// A per-query wall-clock budget. `timeout_ms = 0` disables the deadline —
/// useful for drain-style maintenance queries and deterministic tests.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    expires_at: Option<Instant>,
}

impl Deadline {
    /// Starts the clock now with a budget of `timeout_ms` milliseconds.
    #[must_use]
    pub fn starting_now(timeout_ms: u64) -> Self {
        Self {
            expires_at: (timeout_ms > 0)
                .then(|| Instant::now() + Duration::from_millis(timeout_ms)),
        }
    }

    /// A deadline that never expires.
    #[must_use]
    pub fn unlimited() -> Self {
        Self { expires_at: None }
    }

    /// Whether the budget has elapsed. Checked cooperatively between shards;
    /// a query is never pre-empted mid-estimate.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.expires_at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left, when a deadline is set.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

// ---------------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------------

/// Bounds the number of queries in flight. `max_inflight = 0` means
/// unlimited. Rejection is immediate and typed (HTTP 429) — the daemon sheds
/// load instead of queueing unboundedly.
#[derive(Debug)]
pub struct AdmissionGate {
    max_inflight: usize,
    inflight: AtomicUsize,
}

impl AdmissionGate {
    /// Creates a gate admitting at most `max_inflight` concurrent queries.
    #[must_use]
    pub fn new(max_inflight: usize) -> Self {
        Self {
            max_inflight,
            inflight: AtomicUsize::new(0),
        }
    }

    /// The configured limit (0 = unlimited).
    #[must_use]
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Current number of admitted queries.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Tries to admit one query; `None` means the limit is reached and the
    /// caller must reject. The returned permit releases the slot on drop.
    #[must_use]
    pub fn try_acquire(&self) -> Option<AdmissionPermit<'_>> {
        if self.max_inflight == 0 {
            return Some(AdmissionPermit { gate: None });
        }
        let mut current = self.inflight.load(Ordering::SeqCst);
        loop {
            if current >= self.max_inflight {
                return None;
            }
            match self.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(AdmissionPermit { gate: Some(self) }),
                Err(actual) => current = actual,
            }
        }
    }
}

/// An admitted query's slot; releases it on drop.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: Option<&'a AdmissionGate>,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            gate.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// The cache key: 128-bit query fingerprint plus the shard snapshot
/// generation the result was computed under. A reload after an append
/// changes the generation, so every pre-append entry silently stops
/// matching — bounded staleness without epochs or TTLs.
pub type CacheKey = (u64, u64, u64);

/// A cached merged ranking.
#[derive(Debug)]
pub struct CachedResult {
    /// The merged, globally ranked results.
    pub results: Arc<Vec<ShardedResult>>,
    /// Number of shards that produced them.
    pub shards_queried: usize,
}

/// A bounded LRU cache of merged query results. `capacity = 0` disables
/// caching. Eviction is strict LRU on read *and* write.
///
/// The implementation favours obviousness over asymptotics: recency is a
/// monotonic tick per entry and eviction scans for the minimum. Capacities
/// are daemon-config-sized (tens to thousands), where the O(capacity) scan
/// is noise next to a single sketch join.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<CacheKey, (u64, Arc<CachedResult>)>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` rankings.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configured capacity (0 = disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up a ranking, refreshing its recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((tick, value)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(Arc::clone(value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a ranking, evicting the least recently used entry when full.
    pub fn insert(&mut self, key: CacheKey, value: Arc<CachedResult>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Arc<CachedResult> {
        Arc::new(CachedResult {
            results: Arc::new(Vec::new()),
            shards_queried: 1,
        })
    }

    #[test]
    fn zero_timeout_never_expires() {
        let d = Deadline::starting_now(0);
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(!Deadline::unlimited().expired());
    }

    #[test]
    fn elapsed_deadline_expires() {
        let d = Deadline::starting_now(1);
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn gate_admits_up_to_the_limit_and_releases_on_drop() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "limit reached");
        assert_eq!(gate.inflight(), 2);
        drop(a);
        assert_eq!(gate.inflight(), 1);
        let _c = gate.try_acquire().expect("slot freed by drop");
    }

    #[test]
    fn unlimited_gate_never_rejects() {
        let gate = AdmissionGate::new(0);
        let permits: Vec<_> = (0..64).map(|_| gate.try_acquire().unwrap()).collect();
        assert_eq!(gate.inflight(), 0, "unlimited gate does not count");
        drop(permits);
    }

    #[test]
    fn cache_is_lru_with_recency_refresh_on_get() {
        let mut cache = QueryCache::new(2);
        cache.insert((1, 1, 0), entry());
        cache.insert((2, 2, 0), entry());
        // Touch (1,1,0) so (2,2,0) becomes the LRU victim.
        assert!(cache.get(&(1, 1, 0)).is_some());
        cache.insert((3, 3, 0), entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(1, 1, 0)).is_some());
        assert!(cache.get(&(2, 2, 0)).is_none(), "LRU entry evicted");
        assert!(cache.get(&(3, 3, 0)).is_some());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (3, 1));
    }

    #[test]
    fn generation_change_is_a_cache_miss() {
        let mut cache = QueryCache::new(8);
        cache.insert((7, 7, 1), entry());
        assert!(cache.get(&(7, 7, 1)).is_some());
        // Same query fingerprint, new snapshot generation: miss.
        assert!(cache.get(&(7, 7, 2)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = QueryCache::new(0);
        cache.insert((1, 2, 3), entry());
        assert!(cache.is_empty());
        assert!(cache.get(&(1, 2, 3)).is_none());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = QueryCache::new(2);
        cache.insert((1, 1, 0), entry());
        cache.insert((2, 2, 0), entry());
        cache.insert((1, 1, 0), entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(2, 2, 0)).is_some());
    }
}
