//! The daemon: a TCP acceptor, a pool of query workers each owning one
//! reusable [`EstimatorWorkspace`], and the guardrail plumbing that turns
//! the library into something operable — admission control, per-query
//! deadlines, and the generation-keyed result cache.
//!
//! Threading model: the acceptor spawns one short-lived thread per
//! connection (the protocol is one request per connection). Connection
//! threads do the cheap work — HTTP parsing, routing, cache lookups — and
//! hand `POST /v1/query` bodies to the worker pool over a channel, so the
//! expensive scoring always runs on a worker that has warmed up its
//! estimator workspace. The admission gate bounds queries *admitted*, not
//! connections, so health checks keep answering while the pool is saturated.
//!
//! Shard state lives in an `Epoch` — one immutable `ShardSet` paired with
//! the stage cache bound to its generation — behind a `RwLock`. Queries
//! clone the current epoch (two `Arc` bumps) and score against it for their
//! whole lifetime; the background guardian installs a new epoch after
//! rewriting a shard file, so in-flight queries keep their consistent
//! snapshot while new queries see the compacted one.
//!
//! # Robustness
//!
//! The daemon degrades instead of dying:
//!
//! * **Worker panic isolation** — every query runs under `catch_unwind`; a
//!   panicking query becomes a typed 500 (`"code": "panic"`), the worker
//!   rebuilds its workspace and keeps serving, and the panic counter shows
//!   on `GET /v1/shards`.
//! * **Per-shard circuit breaker** — a shard that fails while scoring is
//!   quarantined ([`crate::guard::ShardHealth`]); queries skip it (partial
//!   ranking with `allow_partial`, strict 500 otherwise) while the guardian
//!   retries reopening it on a capped, jittered backoff.
//! * **Graceful drain** — [`Server::begin_drain`] flips `/v1/healthz` to 503
//!   and rejects new queries with a typed 503 while in-flight ones finish;
//!   the `joinmi_serve` binary wires this to SIGTERM.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

use joinmi_discovery::{
    CandidateSource, CompactMode, QueryStageCache, StageCacheConfig, TableRepository,
};
use joinmi_estimators::EstimatorWorkspace;
use joinmi_hash::SplitMix64;

use crate::guard::{AdmissionGate, CachedResult, Deadline, QueryCache, ShardHealth};
use crate::http::{client_request, read_request, write_response, Request};
use crate::json::{obj, Json};
use crate::shard::ShardSet;
use crate::wire::{QueryRequest, QueryResponse, ServeError, ShardedResult};

/// Daemon configuration; every knob is documented in `docs/SERVING.md`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Query worker threads (each owns one estimator workspace). Clamped to
    /// at least 1.
    pub workers: usize,
    /// Per-query wall-clock budget in milliseconds; 0 disables the deadline.
    pub timeout_ms: u64,
    /// Maximum queries in flight; 0 means unlimited.
    pub max_inflight: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Cross-query stage-cache capacity in entries (joined sketches + MI
    /// estimates, shared across the worker pool); 0 disables the stage cache.
    pub stage_cache_entries: usize,
    /// Cross-query stage-cache bound in resident bytes; 0 means unbounded by
    /// bytes (the entry bound still applies).
    pub stage_cache_bytes: usize,
    /// Background compaction: fold a shard's append log once it carries at
    /// least this many append groups; 0 disables the group trigger.
    pub compact_after_groups: usize,
    /// Background compaction: fold a shard's append log once its appended
    /// history reaches this many bytes (measured against the file on disk,
    /// so external appends count); 0 disables the byte trigger. The
    /// compactor thread runs only when at least one trigger is set.
    pub compact_after_bytes: usize,
    /// How often the guardian thread re-checks the compaction triggers and
    /// quarantined shards, in milliseconds. Clamped to at least 10.
    pub compact_poll_ms: u64,
    /// Base delay for background retries (quarantine reopens, failed
    /// compactions), in milliseconds; doubles per consecutive failure with
    /// deterministic jitter. Clamped to at least 1.
    pub retry_backoff_ms: u64,
    /// Cap on any single background-retry delay, in milliseconds.
    pub retry_backoff_cap_ms: u64,
    /// Budget for [`Server::drain`] to wait for in-flight queries, in
    /// milliseconds. Only the `joinmi_serve` binary's SIGTERM path reads
    /// this; embedders pass their own deadline.
    pub drain_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let stage = StageCacheConfig::default();
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            timeout_ms: 10_000,
            max_inflight: 32,
            cache_capacity: 128,
            stage_cache_entries: stage.max_entries,
            stage_cache_bytes: stage.max_bytes,
            compact_after_groups: 0,
            compact_after_bytes: 0,
            compact_poll_ms: 500,
            retry_backoff_ms: 1_000,
            retry_backoff_cap_ms: 60_000,
            drain_ms: 5_000,
        }
    }
}

/// One immutable serving epoch: a shard set plus the cross-query stage cache
/// bound to its generation. Cloning is two `Arc` bumps; a query holds its
/// epoch for its whole lifetime, so an epoch swap never mixes snapshots
/// within one ranking.
#[derive(Clone)]
struct Epoch {
    shards: Arc<ShardSet>,
    stage_cache: Arc<QueryStageCache>,
}

impl Epoch {
    fn new(shards: ShardSet, config: &ServerConfig) -> Self {
        let stage_cache = QueryStageCache::with_generation(
            StageCacheConfig {
                max_entries: config.stage_cache_entries,
                max_bytes: config.stage_cache_bytes,
            },
            shards.generation(),
        );
        Self {
            shards: Arc::new(shards),
            stage_cache: Arc::new(stage_cache),
        }
    }
}

/// What a worker hands back for one successfully executed query.
struct WorkerOutput {
    results: Arc<Vec<ShardedResult>>,
    /// Shard indices that did not contribute; non-empty only when the
    /// request opted in with `allow_partial` (strict requests fail instead).
    degraded: Vec<usize>,
}

struct Job {
    request: QueryRequest,
    deadline: Deadline,
    /// The epoch the connection thread admitted the query under; the worker
    /// scores against exactly this snapshot set and cache.
    epoch: Epoch,
    reply: Sender<Result<WorkerOutput, ServeError>>,
}

struct Shared {
    /// The current epoch; read by every query, replaced by the guardian.
    epoch: RwLock<Epoch>,
    config: ServerConfig,
    gate: AdmissionGate,
    cache: Mutex<QueryCache>,
    jobs: Mutex<Option<Sender<Job>>>,
    shutdown: AtomicBool,
    /// Draining: `/v1/healthz` answers 503 and new queries are rejected
    /// while in-flight ones finish.
    draining: AtomicBool,
    /// Shard files rewritten by the background guardian since startup.
    compactions: AtomicU64,
    /// Queries that panicked inside a worker (each became a typed 500 and
    /// the worker survived).
    worker_panics: AtomicU64,
    /// Candidates skipped by interval early termination across all queries
    /// since startup (see `QueryStats::early_stopped`).
    early_stopped: AtomicU64,
    /// Candidates skipped by the distinct-sketch join-size bound across all
    /// queries since startup (see `QueryStats::pruned`).
    pruned: AtomicU64,
    /// One circuit breaker per shard, indexed like the shard list. The
    /// shard *count* is fixed for the daemon's lifetime (epoch swaps reload
    /// files in place), so this vector never resizes.
    health: Vec<ShardHealth>,
    /// The bound port; scopes this daemon's fault-injection checkpoints so
    /// concurrent test daemons in one process do not trip each other.
    port: u16,
}

impl Shared {
    fn epoch(&self) -> Epoch {
        // An Epoch is a plain pair of Arcs swapped atomically under the
        // lock; a panicked peer cannot leave it half-updated, so poison is
        // safe to strip — one crashed thread must not take the daemon down.
        self.epoch
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A running daemon. Dropping it (or calling [`Server::shutdown`]) stops the
/// acceptor and joins every worker.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, starts the worker pool and the acceptor, and
    /// returns immediately. Use [`Server::local_addr`] to find the bound
    /// port when the config asked for port 0.
    pub fn start(config: ServerConfig, shards: ShardSet) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        // One breaker per shard, each with its own jitter stream so retry
        // storms across shards de-correlate.
        let health = (0..shards.shards().len())
            .map(|index| {
                ShardHealth::new(
                    config.retry_backoff_ms,
                    config.retry_backoff_cap_ms,
                    SplitMix64::derive_seed(u64::from(local_addr.port()), index as u64),
                )
            })
            .collect();
        let shared = Arc::new(Shared {
            gate: AdmissionGate::new(config.max_inflight),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            epoch: RwLock::new(Epoch::new(shards, &config)),
            jobs: Mutex::new(Some(job_tx)),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            compactions: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            early_stopped: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            health,
            port: local_addr.port(),
            config,
        });

        let mut threads = Vec::new();
        for _ in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            threads.push(std::thread::spawn(move || worker_loop(&shared, &job_rx)));
        }
        {
            // The guardian always runs: even with compaction off it owns
            // reopening quarantined shards.
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || guardian_loop(&shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                acceptor_loop(&shared, &listener)
            }));
        }

        Ok(Self {
            local_addr,
            shared,
            threads,
        })
    }

    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains the worker pool, and joins every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Closing the job channel wakes blocked workers…
        *self
            .shared
            .jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        // …and a dummy connection wakes the blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Flips the daemon into draining mode: `/v1/healthz` starts answering
    /// 503 (so load balancers stop routing here) and new queries are
    /// rejected with a typed 503, while queries already admitted keep
    /// running to completion. Irreversible; the daemon's next step is
    /// [`Server::drain`] or [`Server::shutdown`].
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`Server::begin_drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: begins draining, waits up to `deadline` for
    /// in-flight queries to finish, then stops every thread. Returns whether
    /// the pool emptied before the deadline (queries still running at the
    /// deadline are abandoned by the hard stop). In-flight tracking uses the
    /// admission gate, so with `max_inflight = 0` (an uncounting gate) the
    /// wait degrades to the deadline-free fast path.
    pub fn drain(&mut self, deadline: Duration) -> bool {
        self.begin_drain();
        let until = std::time::Instant::now() + deadline;
        let mut drained = self.shared.gate.inflight() == 0;
        while !drained && std::time::Instant::now() < until {
            std::thread::sleep(Duration::from_millis(10));
            drained = self.shared.gate.inflight() == 0;
        }
        self.shutdown();
        drained
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Accept errors are transient (EMFILE, aborted handshakes);
            // keep serving unless we are shutting down.
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        // One thread per connection: requests are short-lived (the protocol
        // is connection-per-request) and the admission gate, not the thread
        // count, bounds concurrent query work.
        std::thread::spawn(move || handle_connection(&shared, stream));
    }
}

fn worker_loop(shared: &Arc<Shared>, jobs: &Mutex<Receiver<Job>>) {
    // Each worker owns ONE workspace for its whole lifetime: the KSG-family
    // estimators' sort buffers are reused across every query and shard this
    // worker ever scores — the reuse `RelationshipQuery::execute_in` exists
    // for.
    let mut ws = EstimatorWorkspace::new();
    loop {
        let job = {
            // A panicking sibling poisons this mutex while holding nothing
            // but the receiver handle — plain handoff state, safe to strip
            // the poison; the pool must outlive any one worker's crash.
            let rx = jobs.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv_timeout(Duration::from_millis(100))
        };
        match job {
            Ok(job) => {
                // Panic isolation: a query that panics inside the scoring
                // engine becomes a typed 500 and this worker keeps serving.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute_job(shared, &job, &mut ws)
                }));
                let result = match outcome {
                    Ok(result) => result,
                    Err(_) => {
                        shared.worker_panics.fetch_add(1, Ordering::SeqCst);
                        // The workspace's scratch buffers may be mid-mutation
                        // from the unwound query; rebuild rather than trust
                        // them for the next one.
                        ws = EstimatorWorkspace::new();
                        Err(ServeError::QueryPanicked)
                    }
                };
                // The connection thread may have timed out and gone away;
                // that is fine, the result is simply dropped.
                let _ = job.reply.send(result);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One query, on a worker thread: fault-injection checkpoints, quarantine
/// skips, scoring, breaker updates, and the strict-vs-partial policy.
fn execute_job(
    shared: &Shared,
    job: &Job,
    ws: &mut EstimatorWorkspace,
) -> Result<WorkerOutput, ServeError> {
    // Chaos checkpoints: one global, one scoped to this daemon's port so a
    // test arming the process-wide plan only hits its own server. An `Error`
    // action models an engine failure; a `Panic` action exercises the
    // catch_unwind path above.
    joinmi_store::fault::failpoint("serve.worker.query")
        .and_then(|()| {
            joinmi_store::fault::failpoint(&format!("serve.worker.query:{}", shared.port))
        })
        .map_err(|e| ServeError::Internal(e.to_string()))?;

    let quarantined: Vec<usize> = shared
        .health
        .iter()
        .enumerate()
        .filter(|(_, health)| health.is_quarantined())
        .map(|(index, _)| index)
        .collect();
    let outcome = job.epoch.shards.execute(
        &job.request,
        ws,
        Some(&job.epoch.stage_cache),
        job.deadline,
        shared.config.timeout_ms,
        &quarantined,
    )?;

    shared
        .early_stopped
        .fetch_add(outcome.stats.early_stopped as u64, Ordering::SeqCst);
    shared
        .pruned
        .fetch_add(outcome.stats.pruned as u64, Ordering::SeqCst);

    // Trip the breaker for shards that failed mid-query; the guardian will
    // try to bring them back on the reopen schedule.
    for (index, message) in &outcome.failed {
        if let Some(health) = shared.health.get(*index) {
            if !health.is_quarantined() {
                eprintln!(
                    "joinmi_serve: shard {index} failed while scoring and is quarantined: \
                     {message}"
                );
            }
            health.quarantine();
        }
    }

    let degraded = outcome.degraded();
    if !degraded.is_empty() && !job.request.allow_partial {
        return Err(ServeError::Degraded { shards: degraded });
    }
    Ok(WorkerOutput {
        results: Arc::new(outcome.results),
        degraded,
    })
}

/// The background guardian: every `compact_poll_ms` it (1) tries to restore
/// quarantined shards whose reopen backoff has elapsed, and (2) checks each
/// healthy unsealed shard against the compaction triggers and, for each
/// shard due, folds the on-disk append log with [`TableRepository::compact`]
/// (atomic write-new-then-rename), re-reads that one file, and installs a
/// fresh [`Epoch`] — new shard set, new generation, new stage cache.
/// In-flight queries finish on the epoch they started with.
///
/// Compaction triggers:
///
/// * group trigger — the *served snapshot* carries at least
///   `compact_after_groups` append groups;
/// * byte trigger — the *file on disk* carries at least
///   `compact_after_bytes` bytes past the base payload. The on-disk length
///   is re-statted every pass, so append groups written by an external
///   ingester eventually trip this trigger, and the post-compaction reload
///   folds them into the served snapshot — this is the daemon's freshness
///   bound. (Do not append concurrently with a compaction pass itself; see
///   `docs/SERVING.md`.)
///
/// Failures never stop the loop: the previous epoch keeps serving, and each
/// shard's retries (reopen and compaction alike) back off exponentially with
/// deterministic jitter on that shard's [`ShardHealth`] schedule instead of
/// re-firing every poll.
fn guardian_loop(shared: &Arc<Shared>) {
    loop {
        // Sleep one poll interval in short slices so shutdown stays prompt.
        let poll = Duration::from_millis(shared.config.compact_poll_ms.max(10));
        let deadline = std::time::Instant::now() + poll;
        while std::time::Instant::now() < deadline {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10).min(poll));
        }

        reopen_quarantined(shared);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.config.compact_after_groups > 0 || shared.config.compact_after_bytes > 0 {
            run_compactions(shared);
        }
    }
}

/// One guardian pass over quarantined shards: for each whose backoff has
/// elapsed, re-read its file and, on success, restore it to rotation with a
/// fresh epoch. Failure pushes the next attempt out exponentially.
fn reopen_quarantined(shared: &Arc<Shared>) {
    for (index, health) in shared.health.iter().enumerate() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if !health.is_quarantined() || !health.reopen_ready() {
            continue;
        }
        health.record_reopen_attempt();
        match reopen_and_swap(shared, index) {
            Ok(()) => {
                health.restore();
                eprintln!("joinmi_serve: shard {index} reopened; back in rotation");
            }
            Err(message) => {
                health.reopen_failed();
                eprintln!(
                    "joinmi_serve: reopening quarantined shard {index}: {message} (backing off)"
                );
            }
        }
    }
}

/// Re-reads shard `index` from disk and installs a fresh epoch. Shared by
/// the quarantine-reopen path; the file must still decode and hold the same
/// candidate count, or the error leaves the shard quarantined.
fn reopen_and_swap(shared: &Shared, index: usize) -> Result<(), String> {
    let epoch = shared.epoch();
    let reloaded = epoch
        .shards
        .with_reloaded_shard(index)
        .map_err(|e| e.to_string())?;
    let next = Epoch::new(reloaded, &shared.config);
    *shared.epoch.write().unwrap_or_else(PoisonError::into_inner) = next;
    Ok(())
}

/// One guardian pass over the compaction triggers.
fn run_compactions(shared: &Arc<Shared>) {
    let epoch = shared.epoch();
    for (index, shard) in epoch.shards.shards().iter().enumerate() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(health) = shared.health.get(index) else {
            continue;
        };
        if shard.sealed()
            || health.is_quarantined()
            || !health.compact_ready()
            || !compaction_due(shared, shard)
        {
            continue;
        }
        match compact_and_swap(shared, index) {
            Ok(()) => {
                shared.compactions.fetch_add(1, Ordering::SeqCst);
                health.compact_succeeded();
            }
            Err(message) => {
                health.compact_failed();
                eprintln!(
                    "joinmi_serve: compacting {}: {message} (failure {}, backing off)",
                    shard.path().display(),
                    health.compact_failures(),
                );
            }
        }
    }
}

/// Whether either compaction trigger fires for `shard` right now.
fn compaction_due(shared: &Shared, shard: &crate::shard::Shard) -> bool {
    let groups = shared.config.compact_after_groups;
    if groups > 0 && shard.snapshot().append_groups() >= groups {
        return true;
    }
    let bytes = shared.config.compact_after_bytes;
    if bytes > 0 {
        // Measure against the file on disk so externally appended groups
        // count; the served snapshot's base length anchors the computation.
        if let Ok(meta) = std::fs::metadata(shard.path()) {
            return byte_trigger_due(bytes, shard.file_len(), shard.appended_bytes(), meta.len());
        }
    }
    false
}

/// The byte trigger as a pure predicate: the file on disk has grown at least
/// `threshold` bytes past the served snapshot's base payload. Everything
/// saturates — the file may have *shrunk* since the snapshot was taken (an
/// external compaction), and served-length bookkeeping must never be able to
/// underflow this into a debug panic or a wrapped always-true trigger.
fn byte_trigger_due(
    threshold: usize,
    served_len: u64,
    appended_bytes: usize,
    disk_len: u64,
) -> bool {
    let base_len = served_len.saturating_sub(appended_bytes as u64);
    disk_len.saturating_sub(base_len) >= threshold as u64
}

/// Compacts shard `index`'s file in place, then swaps in a new epoch with
/// that shard re-read. The result-cache needs no flush: its keys carry the
/// generation, and the reload changes it.
fn compact_and_swap(shared: &Shared, index: usize) -> Result<(), String> {
    let epoch = shared.epoch();
    let shard = &epoch.shards.shards()[index];
    TableRepository::compact(shard.path(), CompactMode::Preserve).map_err(|e| e.to_string())?;
    let reloaded = epoch
        .shards
        .with_reloaded_shard(index)
        .map_err(|e| e.to_string())?;
    let next = Epoch::new(reloaded, &shared.config);
    *shared.epoch.write().unwrap_or_else(PoisonError::into_inner) = next;
    Ok(())
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            let body = obj([(
                "error",
                obj([
                    ("code", Json::Str("bad_request".into())),
                    ("message", Json::Str(e.message.clone())),
                ]),
            )])
            .encode();
            let _ = write_response(&mut stream, e.status, "Bad Request", &body);
            return;
        }
    };

    let (status, reason, body) = route(shared, &request);
    let _ = write_response(&mut stream, status, reason, &body);
}

fn route(shared: &Shared, request: &Request) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let (status, body) = healthz(shared);
            let reason = if status == 200 {
                "OK"
            } else {
                "Service Unavailable"
            };
            (status, reason, body.encode())
        }
        ("GET", "/v1/shards") => (200, "OK", shards_info(shared).encode()),
        ("POST", "/v1/query") => match query(shared, &request.body) {
            Ok(response) => (200, "OK", response.to_json().encode()),
            Err(e) => {
                let (status, reason) = e.status();
                (status, reason, e.to_json().encode())
            }
        },
        (_, "/v1/healthz" | "/v1/shards" | "/v1/query") => {
            let e = ServeError::MethodNotAllowed;
            let (status, reason) = e.status();
            (status, reason, e.to_json().encode())
        }
        _ => {
            let e = ServeError::NotFound;
            let (status, reason) = e.status();
            (status, reason, e.to_json().encode())
        }
    }
}

/// Readiness: 200 while serving (status `"ok"`, or `"degraded"` with shards
/// quarantined — the daemon still answers), 503 with status `"draining"`
/// once a drain began, so load balancers stop routing here before the
/// process exits.
fn healthz(shared: &Shared) -> (u16, Json) {
    let epoch = shared.epoch();
    let draining = shared.draining.load(Ordering::SeqCst);
    let quarantined = shared.health.iter().filter(|h| h.is_quarantined()).count();
    let status = if draining {
        "draining"
    } else if quarantined > 0 {
        "degraded"
    } else {
        "ok"
    };
    let body = obj([
        ("status", Json::Str(status.into())),
        ("shards", Json::Int(epoch.shards.shards().len() as i64)),
        ("quarantined_shards", Json::Int(quarantined as i64)),
        (
            "generation",
            Json::Str(format!("0x{:016x}", epoch.shards.generation())),
        ),
        ("inflight", Json::Int(shared.gate.inflight() as i64)),
        (
            "compactions",
            Json::Int(shared.compactions.load(Ordering::SeqCst) as i64),
        ),
        (
            "worker_panics",
            Json::Int(shared.worker_panics.load(Ordering::SeqCst) as i64),
        ),
        ("stage_cache", stage_cache_json(&epoch)),
    ]);
    (if draining { 503 } else { 200 }, body)
}

/// The stage cache's counters and occupancy, embedded verbatim in both the
/// healthz payload and `GET /v1/shards`. Counters are per epoch: an epoch
/// swap installs a fresh cache, so they restart at zero after a compaction.
fn stage_cache_json(epoch: &Epoch) -> Json {
    let stats = epoch.stage_cache.stats();
    let config = epoch.stage_cache.config();
    obj([
        ("max_entries", Json::Int(config.max_entries as i64)),
        ("max_bytes", Json::Int(config.max_bytes as i64)),
        ("entries", Json::Int(stats.entries as i64)),
        ("resident_bytes", Json::Int(stats.resident_bytes as i64)),
        ("join_hits", Json::Int(stats.join_hits as i64)),
        ("join_misses", Json::Int(stats.join_misses as i64)),
        ("estimate_hits", Json::Int(stats.estimate_hits as i64)),
        ("estimate_misses", Json::Int(stats.estimate_misses as i64)),
        ("evictions", Json::Int(stats.evictions as i64)),
    ])
}

fn shards_info(shared: &Shared) -> Json {
    let epoch = shared.epoch();
    let shards: Vec<Json> = epoch
        .shards
        .shards()
        .iter()
        .enumerate()
        .map(|(index, shard)| {
            let health = shared.health.get(index);
            obj([
                (
                    "path",
                    Json::Str(shard.path().to_string_lossy().into_owned()),
                ),
                ("file_len", Json::Int(shard.file_len() as i64)),
                ("tables", Json::Int(shard.snapshot().num_tables() as i64)),
                (
                    "candidates",
                    Json::Int(shard.snapshot().candidate_count() as i64),
                ),
                (
                    "append_groups",
                    Json::Int(shard.snapshot().append_groups() as i64),
                ),
                ("appended_bytes", Json::Int(shard.appended_bytes() as i64)),
                ("sealed", Json::Bool(shard.sealed())),
                (
                    "candidate_offset",
                    Json::Int(shard.candidate_offset() as i64),
                ),
                (
                    "quarantined",
                    Json::Bool(health.is_some_and(ShardHealth::is_quarantined)),
                ),
                (
                    "failures",
                    Json::Int(health.map_or(0, ShardHealth::failures) as i64),
                ),
                (
                    "reopen_attempts",
                    Json::Int(health.map_or(0, ShardHealth::reopen_attempts) as i64),
                ),
                (
                    "compact_failures",
                    Json::Int(health.map_or(0, ShardHealth::compact_failures) as i64),
                ),
            ])
        })
        .collect();
    let (hits, misses) = shared
        .cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .stats();
    obj([
        ("shards", Json::Arr(shards)),
        (
            "generation",
            Json::Str(format!("0x{:016x}", epoch.shards.generation())),
        ),
        ("workers", Json::Int(shared.config.workers.max(1) as i64)),
        ("timeout_ms", Json::Int(shared.config.timeout_ms as i64)),
        ("max_inflight", Json::Int(shared.config.max_inflight as i64)),
        (
            "cache_capacity",
            Json::Int(shared.config.cache_capacity as i64),
        ),
        ("cache_hits", Json::Int(hits as i64)),
        ("cache_misses", Json::Int(misses as i64)),
        (
            "early_stopped",
            Json::Int(shared.early_stopped.load(Ordering::SeqCst) as i64),
        ),
        (
            "pruned",
            Json::Int(shared.pruned.load(Ordering::SeqCst) as i64),
        ),
        (
            "compactions",
            Json::Int(shared.compactions.load(Ordering::SeqCst) as i64),
        ),
        (
            "compact_after_groups",
            Json::Int(shared.config.compact_after_groups as i64),
        ),
        (
            "compact_after_bytes",
            Json::Int(shared.config.compact_after_bytes as i64),
        ),
        (
            "worker_panics",
            Json::Int(shared.worker_panics.load(Ordering::SeqCst) as i64),
        ),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
        (
            "retry_backoff_ms",
            Json::Int(shared.config.retry_backoff_ms as i64),
        ),
        ("stage_cache", stage_cache_json(&epoch)),
    ])
}

fn query(shared: &Shared, body: &str) -> Result<QueryResponse, ServeError> {
    // A draining daemon admits nothing new; in-flight queries (already past
    // this check) keep running to the drain deadline.
    if shared.draining.load(Ordering::SeqCst) {
        return Err(ServeError::Draining);
    }
    let request = QueryRequest::from_json(body)?;

    // Admission first: a rejected query does zero parsing beyond this point
    // and zero scoring work.
    let Some(_permit) = shared.gate.try_acquire() else {
        return Err(ServeError::Overloaded {
            max_inflight: shared.gate.max_inflight(),
        });
    };
    let deadline = Deadline::starting_now(shared.config.timeout_ms);

    // One epoch per query: the snapshot set, generation and stage cache stay
    // consistent for this request even if the compactor swaps mid-flight.
    let epoch = shared.epoch();
    let generation = epoch.shards.generation();
    let shards_queried = epoch.shards.shards().len();

    // Cache: keyed by (query fingerprint, snapshot generation). An epoch
    // swap — a compaction, or a reload after append_to — changes the
    // generation, so stale entries stop matching without any flush.
    let fingerprint = request.fingerprint();
    let key = (fingerprint.0, fingerprint.1, generation);
    if let Some(hit) = shared
        .cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        // Only complete rankings are ever cached, so a hit is never partial
        // — and is a valid answer whatever the request's `allow_partial`.
        return Ok(QueryResponse {
            results: hit.results.as_ref().clone(),
            shards_queried: hit.shards_queried,
            generation,
            cached: true,
            partial: false,
            degraded_shards: Vec::new(),
        });
    }

    // Hand the query to the worker pool and wait, bounded by the deadline
    // (workers also check it cooperatively between shards).
    let (reply_tx, reply_rx) = mpsc::channel();
    {
        let jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tx) = jobs.as_ref() else {
            return Err(ServeError::Internal("server is shutting down".into()));
        };
        tx.send(Job {
            request,
            deadline,
            epoch,
            reply: reply_tx,
        })
        .map_err(|_| ServeError::Internal("worker pool is gone".into()))?;
    }
    let output = match deadline.remaining() {
        None => reply_rx
            .recv()
            .map_err(|_| ServeError::Internal("worker dropped the query".into()))?,
        Some(remaining) => {
            // Small grace on top of the budget so a worker that finishes
            // exactly at the deadline still delivers.
            match reply_rx.recv_timeout(remaining + Duration::from_millis(50)) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => Err(ServeError::Timeout {
                    timeout_ms: shared.config.timeout_ms,
                }),
                Err(RecvTimeoutError::Disconnected) => {
                    Err(ServeError::Internal("worker dropped the query".into()))
                }
            }
        }
    }?;

    let partial = !output.degraded.is_empty();
    if !partial {
        // Never cache a partial ranking: the quarantined shard may be back
        // for the very next query under the same generation, and a cached
        // partial answer would silently shadow the complete one.
        shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                key,
                Arc::new(CachedResult {
                    results: Arc::clone(&output.results),
                    shards_queried,
                }),
            );
    }
    Ok(QueryResponse {
        results: output.results.as_ref().clone(),
        shards_queried,
        generation,
        cached: false,
        partial,
        degraded_shards: output.degraded,
    })
}

/// Blocks until the daemon at `addr` answers `GET /v1/healthz`, retrying for
/// up to `wait` total. Used by tests and the CI serve leg to avoid racing
/// the daemon's startup.
pub fn wait_healthy(addr: &str, wait: Duration) -> std::io::Result<()> {
    let deadline = std::time::Instant::now() + wait;
    loop {
        match client_request(addr, "GET", "/v1/healthz", "") {
            Ok((200, _)) => return Ok(()),
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Ok((status, body)) => {
                return Err(std::io::Error::other(format!("unhealthy: {status} {body}")))
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::byte_trigger_due;

    /// Regression: the byte trigger used `file_len - appended_bytes`
    /// unchecked, which panicked in debug (wrapped in release) whenever the
    /// on-disk file shrank below the served snapshot's bookkeeping — e.g. an
    /// external compaction between polls.
    #[test]
    fn byte_trigger_survives_externally_shrunk_files() {
        // Served 120 bytes of which 20 appended → base 100; disk grew to
        // 160: 60 new bytes, due at threshold 50, not at 70.
        assert!(byte_trigger_due(50, 120, 20, 160));
        assert!(!byte_trigger_due(70, 120, 20, 160));
        // Disk shrank to 90 (below the served base): nothing new, not due —
        // and no underflow.
        assert!(!byte_trigger_due(50, 120, 20, 90));
        // Inconsistent bookkeeping (appended > served length) saturates the
        // base to 0 instead of wrapping to u64::MAX.
        assert!(byte_trigger_due(50, 10, 30, 60));
        assert!(!byte_trigger_due(70, 10, 30, 60));
    }
}
