//! A deliberately small HTTP/1.1 layer over `std::net`: enough to serve the
//! three-endpoint REST protocol and nothing more. One request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked encoding), bounded header and body sizes. The same discipline as
//! the store format: hand-rolled over `std`, because the build is offline.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted header block, in bytes.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, in bytes (a million-row query is ~20 MB).
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Socket read timeout: a client that stalls mid-request is dropped rather
/// than pinning a connection thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request: method, path, body.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Decoded body (empty when none was sent).
    pub body: String,
}

/// A request-level failure the server answers with a 4xx before closing.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to answer with.
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

fn http_err(status: u16, message: impl Into<String>) -> HttpError {
    HttpError {
        status,
        message: message.into(),
    }
}

/// Reads one HTTP/1.1 request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| http_err(500, e.to_string()))?;
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| http_err(400, format!("bad request line: {e}")))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| http_err(400, "empty request line"))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| http_err(400, "request line has no path"))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(http_err(400, format!("unsupported version '{version}'")));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();

    // Headers: we only act on Content-Length.
    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| http_err(400, format!("bad header: {e}")))?;
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(http_err(431, "header block too large"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| http_err(400, "invalid Content-Length"))?;
            } else if name.trim().eq_ignore_ascii_case("transfer-encoding") {
                return Err(http_err(501, "chunked transfer encoding not supported"));
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(http_err(413, "request body too large"));
    }

    let mut body_bytes = vec![0u8; content_length];
    reader
        .read_exact(&mut body_bytes)
        .map_err(|e| http_err(400, format!("truncated body: {e}")))?;
    let body =
        String::from_utf8(body_bytes).map_err(|_| http_err(400, "body is not valid UTF-8"))?;

    Ok(Request { method, path, body })
}

/// Writes one response and flushes. The connection is then closed by the
/// caller (the server speaks `Connection: close`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A blocking single-request HTTP client: sends `method path` with `body`
/// and returns `(status, body)`. Shared by the integration tests and the
/// `joinmi_bench serve-check` CI leg, so the daemon is exercised through the
/// same wire format real callers use.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\n\
         Host: {addr}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8(response)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, body.to_owned()))
}
