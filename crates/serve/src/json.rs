//! A minimal JSON value, parser and writer.
//!
//! The workspace builds offline, so the wire layer is hand-rolled like the
//! store format. The subset implemented here is exactly what the serving
//! protocol needs: objects, arrays, strings (with `\uXXXX` escapes), numbers,
//! booleans and null. Two deliberate choices keep query fingerprints and MI
//! bit-patterns exact across the wire:
//!
//! * numbers without a fraction or exponent that fit an `i64` parse as
//!   [`Json::Int`], so 64-bit sketch seeds round-trip losslessly;
//! * floats use Rust's shortest-round-trip `{}` formatting on the way out and
//!   standard `f64` parsing on the way in, which is an exact round trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part that fits an `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (`BTreeMap`), which canonicalizes the
    /// serialized form — two requests with the same fields in a different
    /// order fingerprint identically.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key`, when this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an `i64` (integers only).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// This value as an `f64` (accepts integers too).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// This value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to a compact JSON string. Object keys come out
    /// in sorted order, so the encoding is canonical.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut s = format!("{f}");
                    // `{}` omits the decimal point for integral floats; add
                    // one so the value parses back as Float, not Int.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    // JSON has no NaN/Inf; the protocol never emits them
                    // (MI estimates are finite by construction).
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

/// Convenience: builds an object from key/value pairs.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting limit: deep enough for any protocol message, shallow enough that
/// hostile input cannot overflow the stack (the parser recurses).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError::at(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                self.pos,
                format!("unexpected character '{}'", other as char),
            )),
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key, value).is_some() {
                return Err(JsonError::at(self.pos, "duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    // Infallible expects below: the input arrived as a &str, so any
    // non-ASCII tail is valid UTF-8 and non-empty at this point.
    #[allow(clippy::expect_used)]
    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = match cp {
                                0xD800..=0xDBFF => {
                                    // Surrogate pair: require \uXXXX low half.
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let low = self.hex4()?;
                                        if !(0xDC00..=0xDFFF).contains(&low) {
                                            return Err(JsonError::at(
                                                start,
                                                "invalid low surrogate",
                                            ));
                                        }
                                        let combined = 0x10000
                                            + ((u32::from(cp) - 0xD800) << 10)
                                            + (u32::from(low) - 0xDC00);
                                        char::from_u32(combined)
                                            .ok_or_else(|| JsonError::at(start, "invalid scalar"))?
                                    } else {
                                        return Err(JsonError::at(start, "lone high surrogate"));
                                    }
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(JsonError::at(start, "lone low surrogate"))
                                }
                                cp => char::from_u32(u32::from(cp))
                                    .ok_or_else(|| JsonError::at(start, "invalid scalar"))?,
                            };
                            out.push(c);
                            continue; // hex4 consumed trailing digits already
                        }
                        _ => return Err(JsonError::at(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at(self.pos, "control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| JsonError::at(self.pos, "truncated \\u escape"))?;
        let s = std::str::from_utf8(digits)
            .map_err(|_| JsonError::at(self.pos, "invalid \\u escape"))?;
        let value = u16::from_str_radix(s, 16)
            .map_err(|_| JsonError::at(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    // Infallible expect: the consumed span holds only ASCII number bytes.
    #[allow(clippy::expect_used)]
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(JsonError::at(start, format!("invalid number '{text}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("1.5", Json::Float(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
            assert_eq!(Json::parse(&value.encode()).unwrap(), value);
        }
    }

    #[test]
    fn i64_extremes_are_exact() {
        for i in [i64::MAX, i64::MIN, 1 << 62, u32::MAX as i64 + 1] {
            let encoded = Json::Int(i).encode();
            assert_eq!(Json::parse(&encoded).unwrap(), Json::Int(i));
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -2.5e-17, 3.0] {
            let encoded = Json::Float(f).encode();
            match Json::parse(&encoded).unwrap() {
                Json::Float(parsed) => assert_eq!(parsed.to_bits(), f.to_bits(), "{encoded}"),
                other => panic!("expected float from {encoded}, got {other:?}"),
            }
        }
    }

    #[test]
    fn nested_structures_round_trip_canonically() {
        let text = r#" { "b" : [1, 2.5, "x\n\u00e9"], "a": {"inner": null} } "#;
        let value = Json::parse(text).unwrap();
        let encoded = value.encode();
        // Canonical: keys sorted, no whitespace.
        assert_eq!(encoded, r#"{"a":{"inner":null},"b":[1,2.5,"x\né"]}"#);
        assert_eq!(Json::parse(&encoded).unwrap(), value);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"",
            "{\"a\":}",
            "01x",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "nul",
            "\"\\q\"",
            "\"\u{1}\"",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse(r#""\ud83e\udd80""#).unwrap(),
            Json::Str("🦀".into())
        );
        assert!(Json::parse(r#""\ud83e""#).is_err());
        assert!(Json::parse(r#""\udd80""#).is_err());
    }
}
