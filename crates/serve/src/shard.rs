//! Shard management: opening N repository files as read-only snapshots,
//! stamping the set with a content-derived **generation**, and merging
//! per-shard rankings into a global top-k that is bit-for-bit identical to
//! querying one repository holding every table.
//!
//! # Why the merge is exact
//!
//! Per-candidate scores (`mi`, `join_size`, `key_overlap`) depend only on the
//! query sketch and the candidate's own sketch — never on which file the
//! candidate sits in. A single repository ranks by MI descending with a
//! *stable* sort over joinability-index hits, and those hits are ordered by
//! (key overlap descending, candidate index ascending). When tables are
//! partitioned contiguously across shards in order — the layout
//! `joinmi_bench ingest --shards N` produces — global candidate order equals
//! (shard, local index) lexicographic order, so merging per-shard lists by
//! (MI desc, key overlap desc, shard asc, local index asc) reproduces the
//! single-repository ranking exactly, ties included. Per-shard top-k before
//! the merge is safe for the same reason: each shard's list order agrees
//! with the global order restricted to that shard.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use joinmi_discovery::persist::RepositorySnapshot;
use joinmi_discovery::repository::CandidateSource;
use joinmi_discovery::{QueryStageCache, QueryStats, TableRepository};
use joinmi_estimators::EstimatorWorkspace;
use joinmi_hash::murmur3_x64_128;
use joinmi_store::RecoveryReport;

use crate::guard::Deadline;
use crate::wire::{QueryRequest, ServeError, ShardedResult};

/// Salt for the snapshot-generation hash.
const GENERATION_SEED: u64 = 0x6A6D_6931_4745_4E30; // "jmi1GEN0"

/// One opened shard.
#[derive(Debug)]
pub struct Shard {
    path: PathBuf,
    snapshot: RepositorySnapshot,
    file_len: u64,
    candidate_offset: usize,
}

impl Shard {
    /// The file this shard was opened from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The read-only snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &RepositorySnapshot {
        &self.snapshot
    }

    /// File length at open time, in bytes.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Sum of candidate counts of all earlier shards; local index + offset =
    /// global candidate index.
    #[must_use]
    pub fn candidate_offset(&self) -> usize {
        self.candidate_offset
    }

    /// Bytes of appended history past the base payload (0 for a freshly
    /// ingested or freshly compacted file). This is what the background
    /// compactor's `--compact-bytes` threshold measures.
    #[must_use]
    pub fn appended_bytes(&self) -> usize {
        self.snapshot.appended_bytes()
    }

    /// Whether the file was sealed (compacted with builder state dropped).
    /// Sealed shards are never compacted again and reject appends.
    #[must_use]
    pub fn sealed(&self) -> bool {
        self.snapshot.sealed()
    }
}

/// What one call to [`ShardSet::execute`] produced: the merged ranking from
/// every healthy shard, plus exactly which shards did not contribute and
/// why. A fully healthy run has empty `skipped` and `failed`.
#[derive(Debug)]
pub struct ExecuteOutcome {
    /// Merged, globally ranked results from the contributing shards.
    pub results: Vec<ShardedResult>,
    /// Shards skipped up front because the caller quarantined them.
    pub skipped: Vec<usize>,
    /// Shards that failed while scoring this query, with the failure text.
    pub failed: Vec<(usize, String)>,
    /// Scoring counters aggregated across the contributing shards
    /// (early-terminated and distinct-pruned candidates; see
    /// [`QueryStats`]).
    pub stats: QueryStats,
}

impl ExecuteOutcome {
    /// Every shard index that did not contribute, ascending and deduplicated
    /// — the wire's `degraded_shards` field.
    #[must_use]
    pub fn degraded(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .skipped
            .iter()
            .copied()
            .chain(self.failed.iter().map(|(i, _)| *i))
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Whether every shard contributed.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.skipped.is_empty() && self.failed.is_empty()
    }
}

/// What happened to one shard file during a repairing open.
#[derive(Debug)]
pub struct ShardRepair {
    /// The shard file.
    pub path: PathBuf,
    /// The repair report (`is_torn()` tells whether bytes were dropped).
    pub report: RecoveryReport,
}

/// An ordered set of opened shards plus the generation stamp their snapshots
/// carry. Immutable once opened; reloads build a new `ShardSet` (sharing the
/// untouched shards, so [`ShardSet::with_reloaded_shard`] re-reads one file,
/// not all of them).
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Arc<Shard>>,
    generation: u64,
}

impl ShardSet {
    /// Opens every shard file strictly (torn files are typed errors).
    pub fn open<P: AsRef<Path>>(paths: &[P]) -> Result<Self, joinmi_store::StoreError> {
        Self::open_impl(paths, false).map(|(set, _)| set)
    }

    /// Opens every shard file, first repairing any torn append tail via
    /// [`TableRepository::recover_truncated`]. Returns the set plus one
    /// [`ShardRepair`] per shard describing what (if anything) was dropped.
    /// Unrepairable damage — a torn *base* payload, bit rot — is still a
    /// typed error: repair only ever sheds appended history.
    pub fn open_with_repair<P: AsRef<Path>>(
        paths: &[P],
    ) -> Result<(Self, Vec<ShardRepair>), joinmi_store::StoreError> {
        Self::open_impl(paths, true)
    }

    fn open_impl<P: AsRef<Path>>(
        paths: &[P],
        repair: bool,
    ) -> Result<(Self, Vec<ShardRepair>), joinmi_store::StoreError> {
        let mut shards = Vec::with_capacity(paths.len());
        let mut repairs = Vec::new();
        let mut candidate_offset = 0usize;
        for path in paths {
            let path = path.as_ref().to_path_buf();
            if repair {
                let report = TableRepository::recover_truncated(&path)?;
                repairs.push(ShardRepair {
                    path: path.clone(),
                    report,
                });
            }
            let snapshot = TableRepository::load_mmap_like(&path)?;
            let file_len = std::fs::metadata(&path)?.len();
            let count = snapshot.candidate_count();
            shards.push(Arc::new(Shard {
                path,
                snapshot,
                file_len,
                candidate_offset,
            }));
            candidate_offset += count;
        }
        let generation = Self::generation_of(&shards);
        Ok((Self { shards, generation }, repairs))
    }

    /// The content-derived generation stamp: a hash over every shard's path,
    /// file length and append-group count, in shard order. Appending to a
    /// shard (and reloading) changes it; reopening unchanged files does not,
    /// so cached results stay valid across a no-op reload.
    fn generation_of(shards: &[Arc<Shard>]) -> u64 {
        let mut material = Vec::new();
        for shard in shards {
            material.extend_from_slice(shard.path.to_string_lossy().as_bytes());
            material.push(0);
            material.extend_from_slice(&shard.file_len.to_le_bytes());
            material.extend_from_slice(&(shard.snapshot.append_groups() as u64).to_le_bytes());
            material.extend_from_slice(&(shard.snapshot.candidate_count() as u64).to_le_bytes());
        }
        murmur3_x64_128(&material, GENERATION_SEED).0
    }

    /// The opened shards, in order.
    #[must_use]
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Builds a new `ShardSet` in which shard `index` has been re-read from
    /// its file while every other shard keeps its existing snapshot. This is
    /// the daemon's post-compaction swap step: compaction rewrites one file
    /// in place (atomic rename), then the server installs the set returned
    /// here as the new epoch.
    ///
    /// The reloaded file must hold the same tables in the same order — its
    /// candidate count must not change, or the global candidate offsets of
    /// later shards would shift. A mismatch (someone replaced the file with a
    /// different corpus) is a typed [`joinmi_store::StoreError::Corrupt`], never a silently
    /// re-numbered ranking. Compaction always preserves candidate counts.
    pub fn with_reloaded_shard(&self, index: usize) -> Result<Self, joinmi_store::StoreError> {
        let old = self.shards.get(index).ok_or_else(|| {
            joinmi_store::StoreError::Corrupt(format!(
                "shard index {index} out of range ({} shards)",
                self.shards.len()
            ))
        })?;
        let snapshot = TableRepository::load_mmap_like(&old.path)?;
        if snapshot.candidate_count() != old.snapshot.candidate_count() {
            return Err(joinmi_store::StoreError::Corrupt(format!(
                "reloaded shard {} holds {} candidates where {} were served; \
                 refusing to renumber the global ranking",
                old.path.display(),
                snapshot.candidate_count(),
                old.snapshot.candidate_count(),
            )));
        }
        let file_len = std::fs::metadata(&old.path)?.len();
        let mut shards = self.shards.clone();
        shards[index] = Arc::new(Shard {
            path: old.path.clone(),
            snapshot,
            file_len,
            candidate_offset: old.candidate_offset,
        });
        let generation = Self::generation_of(&shards);
        Ok(Self { shards, generation })
    }

    /// The generation stamp of this snapshot set.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total candidate count across all shards.
    #[must_use]
    pub fn total_candidates(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.snapshot.candidate_count())
            .sum()
    }

    /// Runs one query against every shard with the caller's workspace and
    /// merges the per-shard rankings deterministically (see module docs).
    ///
    /// With a [`QueryStageCache`], each shard's scoring consults the shared
    /// cross-query cache, scoped by the shard's global candidate offset so
    /// shard-local indices cannot collide. The cache must belong to this
    /// `ShardSet`'s generation; the ranking is bit-for-bit identical either
    /// way.
    ///
    /// Shard failures are **isolated**, not fatal: indices in `skip`
    /// (quarantined by the daemon's circuit breaker) are not scored at all,
    /// and a shard whose scoring fails mid-query lands in
    /// [`ExecuteOutcome::failed`] while the remaining shards still
    /// contribute. Deciding whether a degraded outcome is acceptable
    /// (`allow_partial`) is the caller's policy, not this layer's.
    ///
    /// The deadline is checked cooperatively before each shard; expiry
    /// surfaces as [`ServeError::Timeout`] with the elapsed budget. Request
    /// parsing failures are likewise still hard errors — with no query there
    /// is nothing partial to return.
    pub fn execute(
        &self,
        request: &QueryRequest,
        ws: &mut EstimatorWorkspace,
        cache: Option<&QueryStageCache>,
        deadline: Deadline,
        timeout_ms: u64,
        skip: &[usize],
    ) -> Result<ExecuteOutcome, ServeError> {
        let query = request.to_query()?;
        let mut merged: Vec<ShardedResult> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        let mut failed: Vec<(usize, String)> = Vec::new();
        let mut stats = QueryStats::default();
        for (shard_index, shard) in self.shards.iter().enumerate() {
            if deadline.expired() {
                return Err(ServeError::Timeout { timeout_ms });
            }
            if skip.contains(&shard_index) {
                skipped.push(shard_index);
                continue;
            }
            // Fault-injection checkpoints for the chaos tests: one global,
            // one scoped to this shard's file so a single test process can
            // target one daemon's shard without touching its neighbours.
            let scoped = format!("serve.shard.score:{}", shard.path.display());
            if let Err(e) = joinmi_store::fault::failpoint("serve.shard.score")
                .and_then(|()| joinmi_store::fault::failpoint(&scoped))
            {
                failed.push((shard_index, e.to_string()));
                continue;
            }
            let scope = cache.map(|c| c.scope(shard.candidate_offset as u64));
            match query.execute_in_cached_stats(&shard.snapshot, ws, scope.as_ref()) {
                Ok((ranked, shard_stats)) => {
                    stats.merge(shard_stats);
                    merged.extend(ranked.into_iter().map(|candidate| ShardedResult {
                        shard: shard_index,
                        shard_candidate_index: candidate.candidate_index,
                        global_candidate_index: shard.candidate_offset + candidate.candidate_index,
                        candidate,
                    }));
                }
                Err(e) => failed.push((shard_index, e.to_string())),
            }
        }
        if deadline.expired() {
            return Err(ServeError::Timeout { timeout_ms });
        }
        Self::merge_rank(&mut merged);
        if request.top_k > 0 {
            merged.truncate(request.top_k);
        }
        Ok(ExecuteOutcome {
            results: merged,
            skipped,
            failed,
            stats,
        })
    }

    /// Sorts merged per-shard results into the global ranking order:
    /// MI descending, then key overlap descending, then shard, then local
    /// candidate index — a total order equal to the single-repository order
    /// under contiguous table partitioning. MI compares with
    /// [`f64::total_cmp`], the same panic-free total order the per-shard
    /// ranking sort uses — the two comparators must agree for the merge to
    /// stay exact.
    pub fn merge_rank(results: &mut [ShardedResult]) {
        results.sort_by(|a, b| {
            b.candidate
                .mi
                .total_cmp(&a.candidate.mi)
                .then(b.candidate.key_overlap.cmp(&a.candidate.key_overlap))
                .then(a.shard.cmp(&b.shard))
                .then(a.shard_candidate_index.cmp(&b.shard_candidate_index))
        });
    }
}
