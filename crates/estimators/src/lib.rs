//! Entropy and mutual-information estimators.
//!
//! The paper (Section II) uses three families of sample-based MI estimators,
//! chosen by the data types of the two variables:
//!
//! | X type | Y type | Estimator |
//! |---|---|---|
//! | discrete (string) | discrete (string) | plug-in MLE ([`mle`]) |
//! | numeric | numeric | MixedKSG ([`mixed_ksg`], Gao et al. 2017) |
//! | discrete | numeric (or vice versa) | DC-KSG ([`dc_ksg`], Ross 2014) |
//!
//! plus the classic KSG estimator ([`ksg`], Kraskov et al. 2004) for purely
//! continuous data, entropy estimators ([`entropy`]), and the correlation
//! measures ([`correlation`]) used both by the Correlation-Sketches baseline
//! and by the evaluation harness (Spearman's rank correlation of rankings).
//!
//! All estimators work on plain slices, so they can be fed either the fully
//! materialized join (the exact baseline) or the small samples recovered from
//! sketch joins. MI is reported in **nats** (natural logarithm) throughout,
//! matching the paper's synthetic benchmark construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod dc_ksg;
pub mod entropy;
pub mod error;
pub mod knn;
pub mod ksg;
pub mod mixed_ksg;
pub mod mle;
pub mod perturb;
pub mod posterior;
pub mod select;
pub mod special;
pub mod variable;
pub mod workspace;

pub use correlation::{pearson, spearman};
pub use dc_ksg::{dc_ksg_mi, dc_ksg_mi_with};
pub use entropy::{knn_entropy_1d, miller_madow_entropy, mle_entropy};
pub use error::EstimatorError;
pub use ksg::{ksg_mi, ksg_mi_with};
pub use mixed_ksg::{mixed_ksg_mi, mixed_ksg_mi_with};
pub use mle::{mle_mi, mle_mi_bias, smoothed_mle_mi};
pub use perturb::{perturb_ties, perturb_ties_with};
pub use posterior::{
    credible_interval, mi_interval, mi_posterior, mi_posterior_vars, normal_quantile, MiInterval,
    MiPosterior,
};
pub use select::{
    estimate_mi, estimate_mi_with_workspace, select_estimator, EstimatorKind, MiEstimate,
};
pub use variable::{discretize, to_continuous, Variable};
pub use workspace::EstimatorWorkspace;

/// Result alias for estimator operations.
pub type Result<T> = std::result::Result<T, EstimatorError>;

/// Default number of nearest neighbours used by the KSG-family estimators.
pub const DEFAULT_K: usize = 3;
