//! Entropy estimators.
//!
//! * [`mle_entropy`] — the plug-in (maximum likelihood) estimator of Shannon
//!   entropy for discrete samples, Section II of the paper. Known to be
//!   biased downward by roughly `(m − 1) / 2N` (Roulston 1999).
//! * [`miller_madow_entropy`] — the bias-corrected variant.
//! * [`knn_entropy_1d`] — the nearest-neighbour (spacing) estimator of
//!   differential entropy for one-dimensional continuous samples
//!   (Kozachenko–Leonenko / Kraskov et al. 2004, Eq. 20).
//!
//! All entropies are in nats.

use joinmi_hash::FixedHashMap;

use crate::error::EstimatorError;
use crate::special::digamma;
use crate::Result;

/// Plug-in (MLE) entropy of a discrete sample given as integer codes.
///
/// `Ĥ = − Σ_i (N_i / N) ln(N_i / N)`
pub fn mle_entropy(codes: &[u32]) -> Result<f64> {
    if codes.is_empty() {
        return Err(EstimatorError::InsufficientSamples {
            available: 0,
            required: 1,
        });
    }
    let n = codes.len() as f64;
    // Deterministic hasher: the entropy sum runs in iteration order, so a
    // seeded map would perturb the last float bits between runs.
    let mut counts: FixedHashMap<u32, usize> = FixedHashMap::default();
    for &c in codes {
        *counts.entry(c).or_default() += 1;
    }
    let h = counts
        .values()
        .map(|&cnt| {
            let p = cnt as f64 / n;
            -p * p.ln()
        })
        .sum();
    Ok(h)
}

/// Miller–Madow bias-corrected entropy: `Ĥ_MM = Ĥ_MLE + (m − 1) / (2N)` where
/// `m` is the number of observed distinct values.
pub fn miller_madow_entropy(codes: &[u32]) -> Result<f64> {
    let h = mle_entropy(codes)?;
    let n = codes.len() as f64;
    let mut distinct = codes.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let m = distinct.len() as f64;
    Ok(h + (m - 1.0) / (2.0 * n))
}

/// Nearest-neighbour (spacing) estimator of differential entropy for a 1-D
/// continuous sample:
///
/// `Ĥ ≈ ψ(N) − ψ(1) + (1 / (N−1)) Σ ln(x_(i+1) − x_(i))`
///
/// (Kraskov et al. 2004, Eq. 20 — the paper quotes this formula with the
/// signs of the digamma terms flipped, which is a typo: with the signs used
/// here the estimator is consistent, e.g. it converges to 0 for `U(0,1)`.)
///
/// Zero spacings (ties) are skipped; if every spacing is zero the sample is
/// degenerate and `-inf` would be the formal answer, so an error is returned
/// instead.
pub fn knn_entropy_1d(values: &[f64]) -> Result<f64> {
    let n = values.len();
    if n < 2 {
        return Err(EstimatorError::InsufficientSamples {
            available: n,
            required: 2,
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));

    let mut sum = 0.0;
    let mut used = 0usize;
    for w in sorted.windows(2) {
        let spacing = w[1] - w[0];
        if spacing > 0.0 {
            sum += spacing.ln();
            used += 1;
        }
    }
    if used == 0 {
        return Err(EstimatorError::IncompatibleTypes {
            estimator: "knn_entropy_1d".to_owned(),
            detail: "all sample values are identical (zero spacings)".to_owned(),
        });
    }
    let n_f = n as f64;
    Ok(digamma(n_f) - digamma(1.0) + sum / (n_f - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mle_entropy_uniform_and_degenerate() {
        // Uniform over 4 symbols -> ln 4.
        let codes = vec![0, 1, 2, 3, 0, 1, 2, 3];
        assert!((mle_entropy(&codes).unwrap() - 4.0_f64.ln()).abs() < 1e-12);
        // Degenerate -> 0.
        let codes = vec![7, 7, 7];
        assert!(mle_entropy(&codes).unwrap().abs() < 1e-12);
        assert!(mle_entropy(&[]).is_err());
    }

    #[test]
    fn mle_entropy_matches_paper_worked_example() {
        // Section IV-B: Y = [0,0,0,0,0, 1..95]; H(Y) ≈ 4.5247 (natural log
        // units are implied by the numbers given in the paper).
        let mut codes = vec![0u32; 5];
        codes.extend(1..=95u32);
        let h = mle_entropy(&codes).unwrap();
        assert!((h - 4.5247).abs() < 5e-4, "H = {h}");
    }

    #[test]
    fn miller_madow_adds_positive_correction() {
        let codes = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let mle = mle_entropy(&codes).unwrap();
        let mm = miller_madow_entropy(&codes).unwrap();
        assert!(mm > mle);
        assert!((mm - mle - 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn knn_entropy_uniform_near_zero() {
        // For U(0, 1) the differential entropy is 0. The spacing estimator is
        // built for *random* samples (its γ term cancels the expected log of
        // exponential spacings), so use a deterministic LCG sample.
        let n = 20_000u64;
        let mut state = 88_172_645_463_325_252u64;
        let values: Vec<f64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                ((state >> 11) as f64) / (1u64 << 53) as f64
            })
            .collect();
        let h = knn_entropy_1d(&values).unwrap();
        assert!(h.abs() < 0.05, "H = {h}");
    }

    #[test]
    fn knn_entropy_scales_with_range() {
        // H(U(0, s)) = ln s; doubling the range adds ln 2.
        let n = 2000;
        let unit: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let doubled: Vec<f64> = unit.iter().map(|v| v * 2.0).collect();
        let h1 = knn_entropy_1d(&unit).unwrap();
        let h2 = knn_entropy_1d(&doubled).unwrap();
        assert!((h2 - h1 - 2.0_f64.ln()).abs() < 0.01);
    }

    #[test]
    fn knn_entropy_rejects_degenerate_input() {
        assert!(knn_entropy_1d(&[1.0]).is_err());
        assert!(knn_entropy_1d(&[2.0, 2.0, 2.0]).is_err());
    }
}
