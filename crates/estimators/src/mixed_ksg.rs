//! The MixedKSG estimator (Gao, Kannan, Oh, Viswanath — NeurIPS 2017) for
//! variables that are discrete–continuous *mixtures*.
//!
//! Left joins on non-unique keys produce feature columns that repeat values
//! according to the join-key frequency distribution (Section III of the
//! paper); such columns are neither purely continuous (KSG's assumption) nor
//! purely discrete (MLE's assumption). MixedKSG handles them by falling back
//! to plug-in-style counting wherever the k-NN radius collapses to zero:
//!
//! For each sample `i`, let `ρ_i` be the Chebyshev distance to its `k`-th
//! nearest neighbour in the joint space.
//!
//! * If `ρ_i = 0` (the point has ≥ k exact copies): `k̃_i` = number of points
//!   at distance 0 from `i`, and `n_x`, `n_y` count exact marginal ties.
//! * Otherwise `k̃_i = k` and `n_x`, `n_y` count points whose marginal
//!   distance is strictly less than `ρ_i`.
//!
//! `Î = (1/N) Σ_i [ ψ(k̃_i) + ln N − ln(n_x,i) − ln(n_y,i) ]`
//!
//! (counts include the point itself, matching the authors' reference
//! implementation).

use joinmi_hash::FixedHashMap;

use crate::error::EstimatorError;
use crate::special::digamma;
use crate::workspace::{EstimatorWorkspace, ACC_CHUNK};
use crate::Result;

/// MixedKSG estimate of `I(X; Y)` in nats. Counts and radii follow the
/// reference implementation of Gao et al.; the estimate is clamped at 0.
pub fn mixed_ksg_mi(x: &[f64], y: &[f64], k: usize) -> Result<f64> {
    mixed_ksg_mi_with(&mut EstimatorWorkspace::new(), x, y, k)
}

/// [`mixed_ksg_mi`] against a caller-owned [`EstimatorWorkspace`], so batch
/// callers reuse the sort buffers across estimates instead of reallocating.
pub fn mixed_ksg_mi_with(
    ws: &mut EstimatorWorkspace,
    x: &[f64],
    y: &[f64],
    k: usize,
) -> Result<f64> {
    validate(x, y, k)?;
    let n = x.len();
    let n_f = n as f64;

    ws.prepare_joint(x, y);
    let rho = ws.joint.kth_nn_distances(k);
    let joint = &ws.joint;
    let y_marginal = &ws.y_marginal;

    // Joint tie counting needs exact-pair counts; build a counter keyed on
    // both coordinate bit patterns only if some radius is zero. The fixed
    // (deterministic, single-multiply) hasher matches every other bits-keyed
    // hot map in the pipeline — SipHash buys nothing for trusted float bits.
    let needs_tie_counts = rho.contains(&0.0);
    let joint_ties: Option<FixedHashMap<(u64, u64), usize>> = needs_tie_counts.then(|| {
        let mut map = FixedHashMap::default();
        for i in 0..n {
            *map.entry((x[i].to_bits(), y[i].to_bits())).or_insert(0) += 1;
        }
        map
    });

    // Parallel deterministic accumulation (fixed chunks, ordered reduction).
    let partials = joinmi_par::par_map_ranges(n, ACC_CHUNK, |range| {
        let mut acc = 0.0;
        for i in range {
            let (k_tilde, nx, ny) = if rho[i] == 0.0 {
                let ties = joint_ties
                    .as_ref()
                    .and_then(|m| m.get(&(x[i].to_bits(), y[i].to_bits())).copied())
                    .unwrap_or(1);
                (
                    ties as f64,
                    joint.x_count_equal(i),
                    y_marginal.count_equal(i),
                )
            } else {
                (
                    k as f64,
                    joint.x_count_strictly_within(i, rho[i]),
                    y_marginal.count_strictly_within(i, rho[i]),
                )
            };
            acc += digamma(k_tilde) + n_f.ln() - (nx.max(1) as f64).ln() - (ny.max(1) as f64).ln();
        }
        acc
    });
    let acc: f64 = partials.into_iter().sum();

    Ok((acc / n_f).max(0.0))
}

fn validate(x: &[f64], y: &[f64], k: usize) -> Result<()> {
    if x.len() != y.len() {
        return Err(EstimatorError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if k == 0 {
        return Err(EstimatorError::InvalidParameter(
            "k must be >= 1".to_owned(),
        ));
    }
    if x.len() < k + 1 {
        return Err(EstimatorError::InsufficientSamples {
            available: x.len(),
            required: k + 1,
        });
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return Err(EstimatorError::IncompatibleTypes {
            estimator: "MixedKSG".to_owned(),
            detail: "non-finite coordinate".to_owned(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn purely_continuous_data_close_to_ksg() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 0.1 * rng.gen::<f64>()).collect();
        let mixed = mixed_ksg_mi(&x, &y, 3).unwrap();
        let ksg = crate::ksg::ksg_mi(&x, &y, 3).unwrap();
        assert!((mixed - ksg).abs() < 0.15, "mixed={mixed}, ksg={ksg}");
    }

    #[test]
    fn cdunif_matches_closed_form() {
        // The paper's CDUnif distribution: X uniform over {0..m-1},
        // Y ~ U[X, X+2]; I(X;Y) = ln m − (m−1) ln 2 / m.
        let mut rng = StdRng::seed_from_u64(5);
        for m in [4u32, 16, 64] {
            let n = 6000;
            let mut x = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let xv = f64::from(rng.gen_range(0..m));
                x.push(xv);
                y.push(xv + 2.0 * rng.gen::<f64>());
            }
            let expected = f64::from(m).ln() - (f64::from(m) - 1.0) * 2.0_f64.ln() / f64::from(m);
            let mi = mixed_ksg_mi(&x, &y, 5).unwrap();
            assert!(
                (mi - expected).abs() < 0.12,
                "m={m}: mi={mi}, expected={expected}"
            );
        }
    }

    #[test]
    fn fully_discrete_data_close_to_mle() {
        // Identical discrete variables with 4 levels: I = H = ln 4.
        let n = 1000;
        let x: Vec<f64> = (0..n).map(|i| f64::from(i % 4)).collect();
        let mi = mixed_ksg_mi(&x, &x, 3).unwrap();
        assert!((mi - 4.0_f64.ln()).abs() < 0.1, "mi = {mi}");
    }

    #[test]
    fn independent_mixture_near_zero() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 2000;
        // X discrete with repeats, Y continuous, independent.
        let x: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(0..5))).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mi = mixed_ksg_mi(&x, &y, 3).unwrap();
        assert!(mi < 0.05, "mi = {mi}");
    }

    #[test]
    fn validation_errors() {
        assert!(mixed_ksg_mi(&[1.0], &[1.0, 2.0], 1).is_err());
        assert!(mixed_ksg_mi(&[1.0, 2.0], &[1.0, 2.0], 0).is_err());
        assert!(mixed_ksg_mi(&[1.0, 2.0, 3.0], &[1.0, 2.0, f64::INFINITY], 1).is_err());
    }
}
