//! The discrete–continuous MI estimator of Ross (PLoS ONE 2014), referred to
//! as "DC-KSG" in the paper.
//!
//! For a discrete variable `X` (integer codes) and a continuous variable `Y`:
//! for each sample `i`,
//!
//! * `N_{x_i}` = number of samples sharing the discrete value `x_i`,
//! * `d_i` = distance from `y_i` to its `k`-th nearest neighbour *among the
//!   samples with the same discrete value* (with `k_i = min(k, N_{x_i} − 1)`),
//! * `m_i` = number of samples (over the full data set) whose `y` lies within
//!   `d_i` of `y_i` — following the scikit-learn convention the radius is
//!   shrunk infinitesimally so the count is strictly inside the `k`-th
//!   neighbour, and the count includes the point itself.
//!
//! `Î = ψ(N) + ⟨ψ(k_i)⟩ − ⟨ψ(N_{x_i})⟩ − ⟨ψ(m_i)⟩`
//!
//! Samples whose discrete value is unique (`N_{x_i} = 1`) carry no usable
//! neighbourhood information and are excluded from the averages, again
//! matching the reference implementation.

use joinmi_hash::FixedHashMap;

use crate::error::EstimatorError;
use crate::special::digamma;
use crate::workspace::{EstimatorWorkspace, ACC_CHUNK};
use crate::Result;

/// DC-KSG (Ross) estimate of `I(X; Y)` in nats, `X` discrete and `Y`
/// continuous. Clamped at 0.
pub fn dc_ksg_mi(x_codes: &[u32], y: &[f64], k: usize) -> Result<f64> {
    dc_ksg_mi_with(&mut EstimatorWorkspace::new(), x_codes, y, k)
}

/// [`dc_ksg_mi`] against a caller-owned [`EstimatorWorkspace`], so batch
/// callers reuse the sort and group-gather buffers across estimates.
pub fn dc_ksg_mi_with(
    ws: &mut EstimatorWorkspace,
    x_codes: &[u32],
    y: &[f64],
    k: usize,
) -> Result<f64> {
    if x_codes.len() != y.len() {
        return Err(EstimatorError::LengthMismatch {
            x_len: x_codes.len(),
            y_len: y.len(),
        });
    }
    if k == 0 {
        return Err(EstimatorError::InvalidParameter(
            "k must be >= 1".to_owned(),
        ));
    }
    if x_codes.len() < 2 {
        return Err(EstimatorError::InsufficientSamples {
            available: x_codes.len(),
            required: 2,
        });
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(EstimatorError::IncompatibleTypes {
            estimator: "DC-KSG".to_owned(),
            detail: "non-finite continuous coordinate".to_owned(),
        });
    }

    // Group sample indices by discrete value. The fixed hasher makes group
    // iteration order reproducible across runs (the scatter below is
    // order-insensitive, but deterministic traversal keeps profiles stable).
    let mut groups: FixedHashMap<u32, Vec<usize>> = FixedHashMap::default();
    for (i, &c) in x_codes.iter().enumerate() {
        groups.entry(c).or_default().push(i);
    }

    // Per-sample radius and within-group neighbour count; samples in
    // singleton groups are skipped. One workspace-owned gather buffer serves
    // every group instead of a fresh Vec per discrete value, and the
    // workspace's y marginal doubles as the per-group sorted view (it is
    // re-prepared for the full column right after this loop, so borrowing it
    // here costs nothing).
    let mut radius = vec![f64::NAN; y.len()];
    let mut k_used = vec![0usize; y.len()];
    let mut group_size = vec![0usize; y.len()];
    let mut group_y = std::mem::take(&mut ws.scratch);
    for indices in groups.values() {
        let count = indices.len();
        for &i in indices {
            group_size[i] = count;
        }
        if count < 2 {
            continue;
        }
        let local_k = k.min(count - 1);
        group_y.clear();
        group_y.extend(indices.iter().map(|&i| y[i]));
        ws.y_marginal.prepare(&group_y);
        let dists = ws.y_marginal.kth_nn_distances(local_k);
        for (pos, &i) in indices.iter().enumerate() {
            // Shrink the radius infinitesimally (scikit-learn's nextafter
            // trick) so the full-data count is strictly inside the k-th
            // within-group neighbour.
            let r = dists[pos];
            radius[i] = if r > 0.0 { r * (1.0 - 1e-12) } else { 0.0 };
            k_used[i] = local_k;
        }
    }
    ws.scratch = group_y;

    // Parallel deterministic accumulation over the full-data neighbour
    // counts: fixed chunks, per-chunk partial sums, ordered reduction — and
    // each count starts from the point's own rank in the sorted y marginal
    // instead of two full-range binary searches.
    ws.prepare_y_marginal(y);
    let y_marginal = &ws.y_marginal;
    let partials = joinmi_par::par_map_ranges(y.len(), ACC_CHUNK, |range| {
        let mut used = 0usize;
        let (mut psi_k, mut psi_label, mut psi_m) = (0.0f64, 0.0f64, 0.0f64);
        for i in range {
            if group_size[i] < 2 {
                continue;
            }
            used += 1;
            let m = y_marginal.count_within(i, radius[i]).max(1);
            psi_k += digamma(k_used[i] as f64);
            psi_label += digamma(group_size[i] as f64);
            psi_m += digamma(m as f64);
        }
        (used, psi_k, psi_label, psi_m)
    });
    let mut n_used = 0usize;
    let mut sum_psi_k = 0.0;
    let mut sum_psi_label = 0.0;
    let mut sum_psi_m = 0.0;
    for (used, psi_k, psi_label, psi_m) in partials {
        n_used += used;
        sum_psi_k += psi_k;
        sum_psi_label += psi_label;
        sum_psi_m += psi_m;
    }

    if n_used == 0 {
        return Err(EstimatorError::InsufficientSamples {
            available: 0,
            required: 2,
        });
    }

    let n_f = n_used as f64;
    let mi = digamma(n_f) + sum_psi_k / n_f - sum_psi_label / n_f - sum_psi_m / n_f;
    Ok(mi.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn independent_discrete_and_continuous_near_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 3000;
        let x: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mi = dc_ksg_mi(&x, &y, 3).unwrap();
        assert!(mi < 0.05, "mi = {mi}");
    }

    #[test]
    fn cdunif_matches_closed_form() {
        // X uniform over {0..m-1}, Y ~ U[X, X+2]:
        // I = ln m − (m−1) ln 2 / m.
        let mut rng = StdRng::seed_from_u64(9);
        for m in [2u32, 8, 32] {
            let n = 6000;
            let mut x = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let xv = rng.gen_range(0..m);
                x.push(xv);
                y.push(f64::from(xv) + 2.0 * rng.gen::<f64>());
            }
            let expected = f64::from(m).ln() - (f64::from(m) - 1.0) * 2.0_f64.ln() / f64::from(m);
            let mi = dc_ksg_mi(&x, &y, 3).unwrap();
            assert!(
                (mi - expected).abs() < 0.1,
                "m={m}: mi={mi}, expected={expected}"
            );
        }
    }

    #[test]
    fn perfectly_separated_groups_have_high_mi() {
        // Each discrete value maps to a narrow disjoint band of Y; the MI
        // should approach H(X) = ln 4.
        let mut rng = StdRng::seed_from_u64(17);
        let n = 4000;
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let c: u32 = rng.gen_range(0..4);
            x.push(c);
            y.push(f64::from(c) * 10.0 + rng.gen::<f64>());
        }
        let mi = dc_ksg_mi(&x, &y, 3).unwrap();
        assert!((mi - 4.0_f64.ln()).abs() < 0.15, "mi = {mi}");
    }

    #[test]
    fn singleton_groups_are_ignored() {
        // Two usable groups plus a singleton; should not panic and should
        // produce a finite estimate.
        let x = vec![0, 0, 0, 1, 1, 1, 2];
        let y = vec![0.0, 0.1, 0.2, 5.0, 5.1, 5.2, 100.0];
        let mi = dc_ksg_mi(&x, &y, 2).unwrap();
        assert!(mi.is_finite());
        assert!(mi > 0.0);
    }

    #[test]
    fn validation_errors() {
        assert!(dc_ksg_mi(&[0, 1], &[0.0], 1).is_err());
        assert!(dc_ksg_mi(&[0, 1], &[0.0, 1.0], 0).is_err());
        assert!(dc_ksg_mi(&[0], &[0.0], 1).is_err());
        assert!(dc_ksg_mi(&[0, 1], &[0.0, f64::NAN], 1).is_err());
        // All-singleton groups cannot be estimated.
        assert!(dc_ksg_mi(&[0, 1, 2], &[0.0, 1.0, 2.0], 1).is_err());
    }
}
