//! Posterior distribution of discrete mutual information (Hutter 2001,
//! Hutter & Zaffalon 2005).
//!
//! Given the contingency table of a discrete sample pair, the Bayesian
//! treatment puts a Dirichlet posterior on the joint distribution and asks
//! for the distribution of `I(X; Y)` under it. Hutter gives closed forms for
//! the leading-order moments:
//!
//! * posterior mean
//!   `E[I] = (1/n) Σ_ij n_ij [ψ(n_ij+1) − ψ(n_i+1) − ψ(n_j+1) + ψ(n+1)]`,
//! * posterior variance `Var[I] ≈ (K − J²) / (n + 1)` where
//!   `J = Σ_ij (n_ij/n) ln(n_ij n / (n_i n_j))` (the plug-in MI) and
//!   `K` is the same sum with the logarithm squared.
//!
//! Both are exact in the counts the MLE path already accumulates — no
//! resampling, no extra passes over the data. The discovery layer uses them
//! to attach credible intervals to every candidate score and to terminate
//! candidates whose interval cannot reach the running top-k.
//!
//! The moments use the observed counts as the Dirichlet parameters (the
//! "counts-only" posterior); cells never observed carry no mass and drop out
//! of the sums. For continuous or mixed samples the interval is computed on
//! the induced contingency table (exactly equal values grouped into
//! categories), the same coercion [`crate::select::estimate_mi_with`] applies
//! when the MLE is forced onto numeric data.

use joinmi_hash::FixedHashMap;

use crate::error::EstimatorError;
use crate::select::force_codes;
use crate::special::digamma;
use crate::variable::Variable;
use crate::Result;

/// Posterior mean and variance of `I(X; Y)` from a discrete sample pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiPosterior {
    /// Posterior mean `E[I]` in nats (non-negative).
    pub mean: f64,
    /// Leading-order posterior variance `Var[I]` (non-negative).
    pub variance: f64,
    /// Number of paired samples the moments were computed from.
    pub n: usize,
}

/// A credible interval attached to a point MI estimate.
///
/// Invariant (for finite `mi`): `0 ≤ ci_lo ≤ mi ≤ ci_hi`. The interval is
/// centred on the posterior mean and then extended to bracket the point
/// estimate, so ranking by `mi` and ranking by any fixed quantile of the
/// interval agree on which candidates are even plausible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiInterval {
    /// Posterior variance of the estimate.
    pub variance: f64,
    /// Lower credible bound (clamped to `[0, mi]`).
    pub ci_lo: f64,
    /// Upper credible bound (at least `mi`).
    pub ci_hi: f64,
    /// Two-sided confidence level in `(0, 1)`.
    pub level: f64,
}

/// Computes the posterior moments of `I(X; Y)` from integer-coded samples.
///
/// The contingency table is accumulated in a deterministically seeded map so
/// the floating-point sums run in a fixed order — estimates are bit-for-bit
/// reproducible across runs and across parallel/sequential replays, matching
/// the discipline of [`crate::mle::mle_mi`].
pub fn mi_posterior(x: &[u32], y: &[u32]) -> Result<MiPosterior> {
    if x.len() != y.len() {
        return Err(EstimatorError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if x.is_empty() {
        return Err(EstimatorError::InsufficientSamples {
            available: 0,
            required: 1,
        });
    }
    let n = x.len() as f64;

    let mut joint: FixedHashMap<(u32, u32), f64> = FixedHashMap::default();
    let mut px: FixedHashMap<u32, f64> = FixedHashMap::default();
    let mut py: FixedHashMap<u32, f64> = FixedHashMap::default();
    for (&a, &b) in x.iter().zip(y) {
        *joint.entry((a, b)).or_default() += 1.0;
        *px.entry(a).or_default() += 1.0;
        *py.entry(b).or_default() += 1.0;
    }

    let psi_n1 = digamma(n + 1.0);
    let mut mean = 0.0;
    let mut j_sum = 0.0;
    let mut k_sum = 0.0;
    for (&(a, b), &nab) in &joint {
        let na = px[&a];
        let nb = py[&b];
        let w = nab / n;
        mean += w * (digamma(nab + 1.0) - digamma(na + 1.0) - digamma(nb + 1.0) + psi_n1);
        let log_term = (nab * n / (na * nb)).ln();
        j_sum += w * log_term;
        k_sum += w * log_term * log_term;
    }
    Ok(MiPosterior {
        mean: mean.max(0.0),
        variance: ((k_sum - j_sum * j_sum) / (n + 1.0)).max(0.0),
        n: x.len(),
    })
}

/// [`mi_posterior`] over [`Variable`] samples: continuous sides are grouped
/// into categories by exact equality before the contingency table is built.
pub fn mi_posterior_vars(x: &Variable, y: &Variable) -> Result<MiPosterior> {
    mi_posterior(&force_codes(x), &force_codes(y))
}

/// Builds the credible interval for a point estimate `mi` from posterior
/// moments at the given two-sided `level` (e.g. `0.95`).
///
/// The raw interval is `mean ± z σ` with `z = Φ⁻¹((1 + level) / 2)`; it is
/// then clamped below at 0 (MI is non-negative) and extended to bracket the
/// point estimate, preserving `ci_lo ≤ mi ≤ ci_hi` for finite `mi`. A
/// non-finite `mi` degrades gracefully to the posterior-centred bounds.
pub fn credible_interval(mi: f64, posterior: MiPosterior, level: f64) -> Result<MiInterval> {
    if !(level > 0.0 && level < 1.0) {
        return Err(EstimatorError::InvalidParameter(format!(
            "confidence level must be in (0, 1), got {level}"
        )));
    }
    let z = normal_quantile(0.5 + level / 2.0);
    let sigma = posterior.variance.max(0.0).sqrt();
    let lo_raw = posterior.mean - z * sigma;
    let hi_raw = posterior.mean + z * sigma;
    Ok(MiInterval {
        variance: posterior.variance,
        ci_lo: lo_raw.max(0.0).min(mi),
        ci_hi: hi_raw.max(mi),
        level,
    })
}

/// Posterior credible interval around `mi` for a [`Variable`] sample pair:
/// [`mi_posterior_vars`] followed by [`credible_interval`].
pub fn mi_interval(x: &Variable, y: &Variable, mi: f64, level: f64) -> Result<MiInterval> {
    credible_interval(mi, mi_posterior_vars(x, y)?, level)
}

/// Standard normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation (relative error below `1.2e-9` over the
/// whole domain) — more than enough for credible-interval endpoints, and it
/// keeps the crate free of external special-function dependencies.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0, 1), got {p}"
    );
    // Acklam's published coefficients, highest degree first.
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_5,
        -275.928_510_446_968_7,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 6] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
        1.0,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -0.322_396_458_041_136_5,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 5] = [
        7.784_695_709_041_462e-3,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
        1.0,
    ];
    const P_LOW: f64 = 0.024_25;

    let polyval = |coeffs: &[f64], x: f64| coeffs.iter().fold(0.0, |acc, &c| acc * x + c);

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        polyval(&C, q) / polyval(&D, q)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        polyval(&A, r) * q / polyval(&B, r)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -polyval(&C, q) / polyval(&D, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mle::mle_mi;

    fn repeated(pattern: &[u32], reps: usize) -> Vec<u32> {
        pattern
            .iter()
            .copied()
            .cycle()
            .take(pattern.len() * reps)
            .collect()
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-6);
        assert!((normal_quantile(0.995) - 2.575_829_303_548_901).abs() < 1e-6);
        // Symmetry: Φ⁻¹(p) = −Φ⁻¹(1 − p), including the tail branches.
        for p in [0.001, 0.01, 0.1, 0.3] {
            assert!(
                (normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-7,
                "p = {p}"
            );
        }
        // Monotone across the branch boundaries.
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let q = normal_quantile(f64::from(i) / 100.0);
            assert!(q > prev);
            prev = q;
        }
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn normal_quantile_rejects_out_of_range() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn posterior_mean_tracks_mle_for_large_samples() {
        let x = repeated(&[0, 1, 2, 3], 1000);
        let post = mi_posterior(&x, &x).unwrap();
        let mle = mle_mi(&x, &x).unwrap();
        // Identical variables: MI = ln 4; the posterior mean agrees with the
        // plug-in estimate up to O(1/n) correction terms.
        assert!((post.mean - mle).abs() < 0.01, "mean = {}", post.mean);
        assert!((post.mean - 4.0_f64.ln()).abs() < 0.01);
        assert_eq!(post.n, 4000);
    }

    #[test]
    fn independent_sample_has_small_mean_and_variance() {
        let x = repeated(&[0, 0, 1, 1], 64);
        let y = repeated(&[0, 1, 0, 1], 64);
        let post = mi_posterior(&x, &y).unwrap();
        assert!(post.mean >= 0.0);
        assert!(post.mean < 0.05, "mean = {}", post.mean);
        assert!(post.variance >= 0.0);
        assert!(post.variance < 0.01, "variance = {}", post.variance);
    }

    #[test]
    fn variance_shrinks_with_sample_size() {
        // A dependent but noisy pattern so the variance is strictly positive.
        let pattern_x = [0u32, 0, 1, 1, 0, 1, 2, 2];
        let pattern_y = [0u32, 1, 1, 1, 0, 0, 2, 1];
        let small = mi_posterior(&repeated(&pattern_x, 8), &repeated(&pattern_y, 8)).unwrap();
        let large = mi_posterior(&repeated(&pattern_x, 64), &repeated(&pattern_y, 64)).unwrap();
        assert!(small.variance > 0.0);
        assert!(large.variance > 0.0);
        assert!(
            large.variance < small.variance,
            "small = {}, large = {}",
            small.variance,
            large.variance
        );
    }

    #[test]
    fn degenerate_single_cell_table_is_exactly_zero() {
        let x = vec![7u32; 16];
        let post = mi_posterior(&x, &x).unwrap();
        assert_eq!(post.mean, 0.0);
        assert_eq!(post.variance, 0.0);
    }

    #[test]
    fn posterior_errors_on_bad_input() {
        assert!(mi_posterior(&[0, 1], &[0]).is_err());
        assert!(mi_posterior(&[], &[]).is_err());
    }

    #[test]
    fn continuous_sides_are_grouped_by_exact_equality() {
        let x = Variable::Continuous(vec![1.0, 1.0, 2.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        let d = Variable::Discrete(vec![0, 0, 1, 1, 0, 1, 0, 1]);
        let a = mi_posterior_vars(&x, &x).unwrap();
        let b = mi_posterior_vars(&d, &d).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn credible_interval_brackets_the_point_estimate() {
        let x = repeated(&[0, 1, 2, 0, 1, 2, 2, 1], 8);
        let y = repeated(&[0, 1, 2, 0, 1, 0, 2, 1], 8);
        let post = mi_posterior(&x, &y).unwrap();
        let mle = mle_mi(&x, &y).unwrap();
        let iv = credible_interval(mle, post, 0.95).unwrap();
        assert!(iv.ci_lo >= 0.0);
        assert!(iv.ci_lo <= mle);
        assert!(iv.ci_hi >= mle);
        assert_eq!(iv.variance, post.variance);
        assert_eq!(iv.level, 0.95);
    }

    #[test]
    fn interval_widens_with_level() {
        let post = MiPosterior {
            mean: 0.5,
            variance: 0.01,
            n: 100,
        };
        let narrow = credible_interval(0.5, post, 0.5).unwrap();
        let wide = credible_interval(0.5, post, 0.99).unwrap();
        assert!(wide.ci_hi - wide.ci_lo > narrow.ci_hi - narrow.ci_lo);
    }

    #[test]
    fn interval_rejects_bad_level() {
        let post = MiPosterior {
            mean: 0.5,
            variance: 0.01,
            n: 100,
        };
        assert!(credible_interval(0.5, post, 0.0).is_err());
        assert!(credible_interval(0.5, post, 1.0).is_err());
        assert!(credible_interval(0.5, post, -0.5).is_err());
    }

    #[test]
    fn non_finite_point_estimate_degrades_to_posterior_bounds() {
        let post = MiPosterior {
            mean: 0.5,
            variance: 0.01,
            n: 100,
        };
        let iv = credible_interval(f64::NAN, post, 0.95).unwrap();
        assert!(iv.ci_lo.is_finite());
        assert!(iv.ci_hi.is_finite());
        assert!(iv.ci_lo >= 0.0);
        assert!(iv.ci_lo <= iv.ci_hi);
    }

    #[test]
    fn mi_interval_end_to_end() {
        let x = Variable::Discrete(repeated(&[0, 1, 2, 3], 32));
        let est = crate::select::estimate_mi_default(&x, &x).unwrap();
        let iv = mi_interval(&x, &x, est.mi, 0.9).unwrap();
        assert!(iv.ci_lo <= est.mi && est.mi <= iv.ci_hi);
        // Strong dependence on 128 samples: the interval should be tight.
        assert!(iv.ci_hi - iv.ci_lo < 0.5);
    }
}
