//! Estimator selection and the unified estimation entry point.
//!
//! Section V of the paper chooses the estimator from the data types of the
//! two variables (the same dispatch rule as scikit-learn's
//! `mutual_info_classif` / `mutual_info_regression`):
//!
//! * string / string → plug-in MLE,
//! * numeric / numeric → MixedKSG,
//! * string / numeric (either order) → DC-KSG.
//!
//! [`estimate_mi`] applies that rule to a pair of [`Variable`] samples and
//! returns an [`MiEstimate`] carrying the value, the estimator used, and the
//! sample size — everything the discovery layer needs to rank candidates and
//! everything the evaluation harness needs to reproduce the paper's figures.

use std::fmt;

use crate::dc_ksg::dc_ksg_mi_with;
use crate::error::EstimatorError;
use crate::mixed_ksg::mixed_ksg_mi_with;
use crate::mle::{mle_mi, smoothed_mle_mi};
use crate::variable::Variable;
use crate::workspace::EstimatorWorkspace;
use crate::{Result, DEFAULT_K};

/// The available MI estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Plug-in maximum likelihood estimator (discrete–discrete).
    Mle,
    /// Laplace-smoothed MLE with pseudo-count 1 (discrete–discrete).
    SmoothedMle,
    /// Kraskov–Stögbauer–Grassberger estimator (continuous–continuous).
    Ksg,
    /// Gao et al. mixture estimator (numeric, handles repeated values).
    MixedKsg,
    /// Ross discrete–continuous estimator.
    DcKsg,
}

impl EstimatorKind {
    /// Human-readable name used in reports (matches the paper's labels).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Mle => "MLE",
            Self::SmoothedMle => "Smoothed-MLE",
            Self::Ksg => "KSG",
            Self::MixedKsg => "Mixed-KSG",
            Self::DcKsg => "DC-KSG",
        }
    }
}

impl fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of estimating MI on a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiEstimate {
    /// Estimated mutual information in nats (non-negative).
    pub mi: f64,
    /// The estimator that produced the value.
    pub estimator: EstimatorKind,
    /// Number of paired samples the estimate was computed from.
    pub n: usize,
}

/// Chooses the estimator for a pair of variable representations following the
/// paper's data-type rule.
#[must_use]
pub fn select_estimator(x: &Variable, y: &Variable) -> EstimatorKind {
    match (x.is_discrete(), y.is_discrete()) {
        (true, true) => EstimatorKind::Mle,
        (false, false) => EstimatorKind::MixedKsg,
        _ => EstimatorKind::DcKsg,
    }
}

/// Estimates `I(X; Y)` with an explicitly chosen estimator.
///
/// Type coercions follow the paper: KSG-family estimators accept discrete
/// codes as (ordered) numeric coordinates; the MLE treats numeric samples as
/// categorical by grouping exactly equal values; DC-KSG requires at least one
/// discrete side and puts the discrete variable on the categorical axis.
pub fn estimate_mi_with(
    x: &Variable,
    y: &Variable,
    kind: EstimatorKind,
    k: usize,
) -> Result<MiEstimate> {
    estimate_mi_with_workspace(&mut EstimatorWorkspace::new(), x, y, kind, k)
}

/// [`estimate_mi_with`] against a caller-owned [`EstimatorWorkspace`].
///
/// Batch callers (candidate scoring, evaluation grids) keep one workspace per
/// worker so the KSG-family paths reuse their sort buffers across estimates;
/// the MLE paths ignore the workspace.
pub fn estimate_mi_with_workspace(
    ws: &mut EstimatorWorkspace,
    x: &Variable,
    y: &Variable,
    kind: EstimatorKind,
    k: usize,
) -> Result<MiEstimate> {
    if x.len() != y.len() {
        return Err(EstimatorError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    let n = x.len();
    let mi = match kind {
        EstimatorKind::Mle => mle_mi(&force_codes(x), &force_codes(y))?,
        EstimatorKind::SmoothedMle => smoothed_mle_mi(&force_codes(x), &force_codes(y), 1.0)?,
        EstimatorKind::Ksg => {
            crate::ksg::ksg_mi_with(ws, &x.as_continuous(), &y.as_continuous(), k)?
        }
        EstimatorKind::MixedKsg => {
            mixed_ksg_mi_with(ws, &x.as_continuous(), &y.as_continuous(), k)?
        }
        EstimatorKind::DcKsg => match (x, y) {
            (Variable::Discrete(codes), other) => {
                dc_ksg_mi_with(ws, codes, &other.as_continuous(), k)?
            }
            (other, Variable::Discrete(codes)) => {
                dc_ksg_mi_with(ws, codes, &other.as_continuous(), k)?
            }
            (Variable::Continuous(_), Variable::Continuous(_)) => {
                return Err(EstimatorError::IncompatibleTypes {
                    estimator: "DC-KSG".to_owned(),
                    detail:
                        "requires one discrete variable; both are continuous (discretize one first)"
                            .to_owned(),
                })
            }
        },
    };
    Ok(MiEstimate {
        mi,
        estimator: kind,
        n,
    })
}

/// Estimates `I(X; Y)` with the estimator chosen automatically from the
/// variable representations (the paper's default behaviour).
pub fn estimate_mi(x: &Variable, y: &Variable, k: usize) -> Result<MiEstimate> {
    let kind = select_estimator(x, y);
    estimate_mi_with(x, y, kind, k)
}

/// Estimates `I(X; Y)` with the automatically selected estimator and the
/// default neighbour count.
pub fn estimate_mi_default(x: &Variable, y: &Variable) -> Result<MiEstimate> {
    estimate_mi(x, y, DEFAULT_K)
}

pub(crate) fn force_codes(v: &Variable) -> Vec<u32> {
    match v {
        Variable::Discrete(codes) => codes.clone(),
        Variable::Continuous(values) => {
            // Group exactly equal numeric values into categories.
            let mut map = std::collections::HashMap::new();
            values
                .iter()
                .map(|x| {
                    let next = map.len() as u32;
                    *map.entry(x.to_bits()).or_insert(next)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_follows_type_rule() {
        let d = Variable::Discrete(vec![0, 1]);
        let c = Variable::Continuous(vec![0.0, 1.0]);
        assert_eq!(select_estimator(&d, &d), EstimatorKind::Mle);
        assert_eq!(select_estimator(&c, &c), EstimatorKind::MixedKsg);
        assert_eq!(select_estimator(&d, &c), EstimatorKind::DcKsg);
        assert_eq!(select_estimator(&c, &d), EstimatorKind::DcKsg);
    }

    #[test]
    fn mle_path_on_identical_discrete() {
        let x = Variable::Discrete(vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let est = estimate_mi_default(&x, &x).unwrap();
        assert_eq!(est.estimator, EstimatorKind::Mle);
        assert_eq!(est.n, 8);
        assert!((est.mi - 4.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn dc_ksg_path_accepts_either_argument_order() {
        let d = Variable::Discrete(vec![0, 0, 0, 1, 1, 1, 0, 1, 0, 1]);
        let c = Variable::Continuous(vec![0.1, 0.2, 0.15, 5.1, 5.2, 5.15, 0.12, 5.3, 0.22, 5.05]);
        let a = estimate_mi_default(&d, &c).unwrap();
        let b = estimate_mi_default(&c, &d).unwrap();
        assert_eq!(a.estimator, EstimatorKind::DcKsg);
        assert!((a.mi - b.mi).abs() < 1e-12);
    }

    #[test]
    fn explicit_estimator_override() {
        // Force the MLE onto numeric data: exact ties become categories.
        let x = Variable::Continuous(vec![1.0, 1.0, 2.0, 2.0]);
        let y = Variable::Continuous(vec![5.0, 5.0, 9.0, 9.0]);
        let est = estimate_mi_with(&x, &y, EstimatorKind::Mle, DEFAULT_K).unwrap();
        assert!((est.mi - 2.0_f64.ln()).abs() < 1e-9);

        // DC-KSG on two continuous variables is a type error.
        assert!(estimate_mi_with(&x, &y, EstimatorKind::DcKsg, DEFAULT_K).is_err());
    }

    #[test]
    fn smoothed_mle_is_not_larger_than_mle() {
        let x = Variable::Discrete(vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let plain = estimate_mi_with(&x, &x, EstimatorKind::Mle, DEFAULT_K).unwrap();
        let smooth = estimate_mi_with(&x, &x, EstimatorKind::SmoothedMle, DEFAULT_K).unwrap();
        assert!(smooth.mi <= plain.mi);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let x = Variable::Discrete(vec![0, 1]);
        let y = Variable::Discrete(vec![0]);
        assert!(estimate_mi_default(&x, &y).is_err());
    }
}
