//! The KSG estimator (Kraskov, Stögbauer, Grassberger 2004, "estimator 1")
//! for continuous–continuous variable pairs.
//!
//! `Î(X;Y) = ψ(k) + ψ(N) − ⟨ψ(n_x + 1) + ψ(n_y + 1)⟩`
//!
//! where, for each point `i`, `ε_i` is the Chebyshev distance to its `k`-th
//! nearest neighbour in the joint space and `n_x(i)` / `n_y(i)` count the
//! points whose marginal coordinate lies strictly within `ε_i` of the query
//! (excluding the query itself).

use crate::error::EstimatorError;
use crate::special::digamma;
use crate::workspace::{EstimatorWorkspace, ACC_CHUNK};
use crate::Result;

/// KSG estimate of `I(X; Y)` in nats for two continuous samples.
///
/// `k` is the number of neighbours (3–5 is customary). The estimate is
/// clamped at 0.
///
/// KSG assumes continuous distributions: heavy ties (repeated values) make
/// `ε_i = 0` for some points, which this implementation handles by falling
/// back to counting exact ties (the same convention as MixedKSG), but if your
/// data has many repeated values prefer [`crate::mixed_ksg::mixed_ksg_mi`].
pub fn ksg_mi(x: &[f64], y: &[f64], k: usize) -> Result<f64> {
    ksg_mi_with(&mut EstimatorWorkspace::new(), x, y, k)
}

/// [`ksg_mi`] against a caller-owned [`EstimatorWorkspace`], so batch callers
/// reuse the sort buffers across estimates instead of reallocating.
pub fn ksg_mi_with(ws: &mut EstimatorWorkspace, x: &[f64], y: &[f64], k: usize) -> Result<f64> {
    validate(x, y, k)?;
    let n = x.len();
    let n_f = n as f64;

    ws.prepare_joint(x, y);
    let eps = ws.joint.kth_nn_distances(k);
    let joint = &ws.joint;
    let y_marginal = &ws.y_marginal;

    // Parallel deterministic accumulation: fixed-size chunks, one partial sum
    // per chunk, reduced in chunk order — identical bits at any thread count.
    let partials = joinmi_par::par_map_ranges(n, ACC_CHUNK, |range| {
        let mut acc = 0.0;
        for i in range {
            let (nx, ny) = if eps[i] > 0.0 {
                // Counts include the point itself, hence the "+1" of the
                // formula is already incorporated (ψ(n_x + 1) with n_x
                // excluding self).
                (
                    joint.x_count_strictly_within(i, eps[i]),
                    y_marginal.count_strictly_within(i, eps[i]),
                )
            } else {
                // Degenerate neighbourhood: count exact ties instead.
                (joint.x_count_equal(i), y_marginal.count_equal(i))
            };
            acc += digamma(nx.max(1) as f64) + digamma(ny.max(1) as f64);
        }
        acc
    });
    let acc: f64 = partials.into_iter().sum();

    let mi = digamma(k as f64) + digamma(n_f) - acc / n_f;
    Ok(mi.max(0.0))
}

fn validate(x: &[f64], y: &[f64], k: usize) -> Result<()> {
    if x.len() != y.len() {
        return Err(EstimatorError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if k == 0 {
        return Err(EstimatorError::InvalidParameter(
            "k must be >= 1".to_owned(),
        ));
    }
    if x.len() < k + 1 {
        return Err(EstimatorError::InsufficientSamples {
            available: x.len(),
            required: k + 1,
        });
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return Err(EstimatorError::IncompatibleTypes {
            estimator: "KSG".to_owned(),
            detail: "non-finite coordinate".to_owned(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_pair(rng: &mut StdRng, rho: f64) -> (f64, f64) {
        // Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z1 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let z2 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).sin();
        (z1, rho * z1 + (1.0 - rho * rho).sqrt() * z2)
    }

    #[test]
    fn independent_gaussians_have_near_zero_mi() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng, 0.0);
            x.push(a);
            y.push(b);
        }
        let mi = ksg_mi(&x, &y, 3).unwrap();
        assert!(mi < 0.05, "mi = {mi}");
    }

    #[test]
    fn correlated_gaussians_match_closed_form() {
        // I = −½ ln(1 − ρ²).
        let mut rng = StdRng::seed_from_u64(7);
        for rho in [0.5, 0.9] {
            let n = 4000;
            let mut x = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let (a, b) = gaussian_pair(&mut rng, rho);
                x.push(a);
                y.push(b);
            }
            let expected = -0.5 * (1.0 - rho * rho).ln();
            let mi = ksg_mi(&x, &y, 3).unwrap();
            assert!(
                (mi - expected).abs() < 0.1,
                "rho={rho}: mi={mi}, expected={expected}"
            );
        }
    }

    #[test]
    fn deterministic_relationship_gives_large_mi() {
        let x: Vec<f64> = (0..500).map(|i| f64::from(i) / 500.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let mi = ksg_mi(&x, &y, 3).unwrap();
        assert!(mi > 2.0, "mi = {mi}");
    }

    #[test]
    fn invariance_under_monotone_transformation() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 1500;
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng, 0.7);
            x.push(a);
            y.push(b);
        }
        let mi1 = ksg_mi(&x, &y, 3).unwrap();
        let x_exp: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        let mi2 = ksg_mi(&x_exp, &y, 3).unwrap();
        assert!((mi1 - mi2).abs() < 0.1, "mi1={mi1}, mi2={mi2}");
    }

    #[test]
    fn input_validation() {
        assert!(ksg_mi(&[1.0, 2.0], &[1.0], 1).is_err());
        assert!(ksg_mi(&[1.0, 2.0], &[1.0, 2.0], 0).is_err());
        assert!(ksg_mi(&[1.0, 2.0], &[1.0, 2.0], 3).is_err());
        assert!(ksg_mi(&[1.0, f64::NAN], &[1.0, 2.0], 1).is_err());
    }
}
