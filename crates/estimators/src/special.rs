//! Special functions needed by the kNN-based estimators.
//!
//! Only the digamma function `ψ` is required (KSG-family estimators are built
//! entirely from `ψ` and logarithms); `ln Γ` is provided as well because the
//! trinomial entropy computation in `joinmi-synth` and the smoothed MLE use
//! factorials of potentially large counts.

/// Euler–Mascheroni constant `γ`.
pub const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;

/// Digamma function `ψ(x)` for `x > 0`.
///
/// Uses the standard recurrence `ψ(x) = ψ(x + 1) − 1/x` to push the argument
/// above 6 and then the asymptotic series. Absolute error is below `1e-12`
/// for all arguments used by the estimators (positive integers and halves).
#[must_use]
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires a positive argument, got {x}");
    let mut result = 0.0;
    let mut x = x;
    while x < 12.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶)
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
}

/// Natural logarithm of the Gamma function `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9), accurate to ~1e-13 in the range used
/// here.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    // Canonical published Lanczos(g=7, n=9) coefficients, kept verbatim.
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` computed via `ln Γ(n + 1)`.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    // Exact for small n to avoid approximation noise in entropy formulas.
    const SMALL: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362_880.0,
        3_628_800.0,
        39_916_800.0,
        479_001_600.0,
        6_227_020_800.0,
        87_178_291_200.0,
        1_307_674_368_000.0,
        20_922_789_888_000.0,
        355_687_428_096_000.0,
        6_402_373_705_728_000.0,
        121_645_100_408_832_000.0,
        2_432_902_008_176_640_000.0,
    ];
    if (n as usize) < SMALL.len() {
        SMALL[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Binomial coefficient `ln C(n, k)`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ
        assert!((digamma(1.0) + EULER_MASCHERONI).abs() < 1e-10);
        // ψ(2) = 1 − γ
        assert!((digamma(2.0) - (1.0 - EULER_MASCHERONI)).abs() < 1e-10);
        // ψ(1/2) = −γ − 2 ln 2
        assert!((digamma(0.5) - (-EULER_MASCHERONI - 2.0 * 2.0_f64.ln())).abs() < 1e-10);
        // ψ(10) = H_9 − γ
        let h9: f64 = (1..10).map(|i| 1.0 / f64::from(i)).sum();
        assert!((digamma(10.0) - (h9 - EULER_MASCHERONI)).abs() < 1e-10);
    }

    #[test]
    fn digamma_recurrence_property() {
        for x in [0.3, 1.7, 5.5, 42.0] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10,
                "x = {x}"
            );
        }
    }

    #[test]
    fn digamma_large_argument_close_to_log() {
        let x = 1e6;
        assert!((digamma(x) - x.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn digamma_rejects_non_positive() {
        let _ = digamma(0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        for n in 0..30u64 {
            let direct: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
            assert!((ln_factorial(n) - direct).abs() < 1e-8, "n = {n}");
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10.0_f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }
}
