//! Error type for estimators.

use std::fmt;

/// Errors produced by entropy / MI estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimatorError {
    /// The two input samples have different lengths.
    LengthMismatch {
        /// Length of the X sample.
        x_len: usize,
        /// Length of the Y sample.
        y_len: usize,
    },
    /// Not enough samples to run the estimator.
    InsufficientSamples {
        /// Samples available.
        available: usize,
        /// Samples required.
        required: usize,
    },
    /// The requested estimator cannot handle the supplied variable types.
    IncompatibleTypes {
        /// The estimator name.
        estimator: String,
        /// Description of the offending types.
        detail: String,
    },
    /// A parameter was out of range (e.g. `k = 0`).
    InvalidParameter(String),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { x_len, y_len } => {
                write!(
                    f,
                    "samples have different lengths: |X| = {x_len}, |Y| = {y_len}"
                )
            }
            Self::InsufficientSamples {
                available,
                required,
            } => {
                write!(
                    f,
                    "estimator needs at least {required} samples, got {available}"
                )
            }
            Self::IncompatibleTypes { estimator, detail } => {
                write!(
                    f,
                    "{estimator} cannot handle these variable types: {detail}"
                )
            }
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for EstimatorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = EstimatorError::LengthMismatch { x_len: 3, y_len: 4 };
        assert!(e.to_string().contains('3'));
        let e = EstimatorError::InsufficientSamples {
            available: 1,
            required: 4,
        };
        assert!(e.to_string().contains('4'));
    }
}
