//! Nearest-neighbour search helpers for the KSG-family estimators.
//!
//! All KSG variants need two primitives:
//!
//! 1. for every point `i`, the distance to its `k`-th nearest neighbour in
//!    the *joint* space under the Chebyshev (max) metric, excluding the point
//!    itself ([`kth_nn_distances_chebyshev`], [`kth_nn_distances_1d`]);
//! 2. for every point `i`, the number of points whose marginal coordinate
//!    lies within a given radius ([`MarginalCounter`]).
//!
//! The joint search sorts points by their x coordinate and expands a window
//! outwards from each query point, pruning as soon as the x-distance alone
//! exceeds the current k-th best — the classic trick that makes the search
//! near-linear for well-spread data while remaining exactly correct in the
//! worst case.
//!
//! Every point's search is independent, so both distance kernels chunk the
//! per-point loop across [`joinmi_par`] workers. Each worker keeps **one**
//! reusable bounded max-heap (the private `BoundedMaxHeap`) for its whole chunk stream
//! instead of allocating a fresh `BinaryHeap` per point, and results are
//! written back in input order — parallel output is bit-for-bit equal to the
//! sequential one.

/// Counts points within a radius of a centre along one marginal, in
/// `O(log n)` per query, over a pre-sorted copy of the coordinates.
#[derive(Debug, Clone)]
pub struct MarginalCounter {
    sorted: Vec<f64>,
}

impl MarginalCounter {
    /// Builds a counter over the given coordinates (need not be sorted).
    #[must_use]
    pub fn new(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        Self { sorted }
    }

    /// Number of points `z` with `|z − center| < radius` (strict), including
    /// any points equal to the centre itself.
    #[must_use]
    pub fn count_strictly_within(&self, center: f64, radius: f64) -> usize {
        if radius <= 0.0 {
            return 0;
        }
        let lo = self.sorted.partition_point(|&v| v <= center - radius);
        let hi = self.sorted.partition_point(|&v| v < center + radius);
        hi - lo
    }

    /// Number of points `z` with `|z − center| <= radius`, including points
    /// equal to the centre.
    #[must_use]
    pub fn count_within(&self, center: f64, radius: f64) -> usize {
        let lo = self.sorted.partition_point(|&v| v < center - radius);
        let hi = self.sorted.partition_point(|&v| v <= center + radius);
        hi - lo
    }

    /// Number of points exactly equal to the centre (within `tolerance`).
    #[must_use]
    pub fn count_equal(&self, center: f64, tolerance: f64) -> usize {
        self.count_within(center, tolerance)
    }

    /// Total number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if there are no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A bounded max-heap of the `k` smallest distances seen so far, backed by a
/// plain `Vec<f64>` that is **reused across points** (cleared, not dropped).
///
/// Replaces the former per-point `BinaryHeap<OrdF64>`: no wrapper type, no
/// allocation per query point, and the root is always the current k-th best
/// distance (the pruning threshold). The k-th smallest value of a multiset is
/// unique, so results are identical to the `BinaryHeap` implementation.
#[derive(Debug, Clone)]
struct BoundedMaxHeap {
    k: usize,
    heap: Vec<f64>,
}

impl BoundedMaxHeap {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// Empties the heap for the next query point, keeping the allocation.
    #[inline]
    fn clear(&mut self) {
        self.heap.clear();
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Current k-th best distance: the maximum kept, or infinity while the
    /// heap is not yet full.
    #[inline]
    fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap[0]
        } else {
            f64::INFINITY
        }
    }

    /// The final answer for a point: the largest of the k kept distances.
    #[inline]
    fn max(&self) -> f64 {
        self.heap.first().copied().unwrap_or(f64::INFINITY)
    }

    /// Offers a candidate distance, keeping only the k smallest.
    #[inline]
    fn offer(&mut self, dist: f64) {
        if !self.is_full() {
            self.heap.push(dist);
            self.sift_up(self.heap.len() - 1);
        } else if dist < self.heap[0] {
            self.heap[0] = dist;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] <= self.heap[parent] {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let largest_child = if right < n && self.heap[right] > self.heap[left] {
                right
            } else {
                left
            };
            if self.heap[largest_child] <= self.heap[i] {
                break;
            }
            self.heap.swap(i, largest_child);
            i = largest_child;
        }
    }
}

/// For each point `(xs[i], ys[i])`, returns the Chebyshev distance to its
/// `k`-th nearest neighbour among the *other* points.
///
/// Ties are handled naturally: if several points coincide with the query, the
/// returned distance can be `0.0` (MixedKSG relies on this).
///
/// # Panics
/// Panics if `xs.len() != ys.len()`, if `k == 0`, or if `k >= xs.len()`.
#[must_use]
pub fn kth_nn_distances_chebyshev(xs: &[f64], ys: &[f64], k: usize) -> Vec<f64> {
    assert_eq!(
        xs.len(),
        ys.len(),
        "coordinate slices must have equal length"
    );
    let n = xs.len();
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k < n,
        "k ({k}) must be smaller than the number of points ({n})"
    );

    // Sort point indices by x so we can expand a window and prune on |dx|.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite coordinates"));
    // Position of each original index in the sorted order.
    let mut pos = vec![0usize; n];
    for (p, &idx) in order.iter().enumerate() {
        pos[idx] = p;
    }

    // Each point's window expansion is independent: chunk the per-point loop
    // across workers, one reusable bounded heap per worker.
    joinmi_par::par_map_index_with(
        n,
        || BoundedMaxHeap::new(k),
        |heap, i| {
            let p = pos[i];
            let (xi, yi) = (xs[i], ys[i]);
            heap.clear();

            let mut left = p;
            let mut right = p + 1;
            loop {
                // Current pruning threshold: the k-th best distance, or
                // infinity until the heap is full.
                let threshold = heap.threshold();

                // Candidate x-distances on each side.
                let left_dx = if left > 0 {
                    (xi - xs[order[left - 1]]).abs()
                } else {
                    f64::INFINITY
                };
                let right_dx = if right < n {
                    (xs[order[right]] - xi).abs()
                } else {
                    f64::INFINITY
                };

                if left_dx > threshold && right_dx > threshold {
                    break;
                }
                if left_dx == f64::INFINITY && right_dx == f64::INFINITY {
                    break;
                }

                let j = if left_dx <= right_dx {
                    left -= 1;
                    order[left]
                } else {
                    let j = order[right];
                    right += 1;
                    j
                };
                let dist = (xi - xs[j]).abs().max((yi - ys[j]).abs());
                heap.offer(dist);
            }
            heap.max()
        },
    )
}

/// For each value, the distance to its `k`-th nearest neighbour among the
/// other values of the same (1-dimensional) sample.
///
/// # Panics
/// Panics if `k == 0` or `k >= values.len()`.
#[must_use]
pub fn kth_nn_distances_1d(values: &[f64], k: usize) -> Vec<f64> {
    let n = values.len();
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k < n,
        "k ({k}) must be smaller than the number of points ({n})"
    );

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));

    // Window expansions are independent per point: compute the k-th distance
    // for each *sorted position* in parallel, then scatter back to the
    // original index order sequentially (a cheap O(n) pass).
    let by_position = joinmi_par::par_map_index(n, |p| {
        let v = values[order[p]];
        // Expand a window of size k around position p in the sorted order.
        let mut left = p;
        let mut right = p + 1;
        let mut kth = 0.0f64;
        for _ in 0..k {
            let left_d = if left > 0 {
                (v - values[order[left - 1]]).abs()
            } else {
                f64::INFINITY
            };
            let right_d = if right < n {
                (values[order[right]] - v).abs()
            } else {
                f64::INFINITY
            };
            if left_d <= right_d {
                kth = left_d;
                left -= 1;
            } else {
                kth = right_d;
                right += 1;
            }
        }
        kth
    });

    let mut result = vec![0.0f64; n];
    for (p, &idx) in order.iter().enumerate() {
        result[idx] = by_position[p];
    }
    result
}

/// Brute-force reference for the Chebyshev k-NN distances (used in tests and
/// kept public for verification experiments).
#[must_use]
pub fn kth_nn_distances_chebyshev_bruteforce(xs: &[f64], ys: &[f64], k: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(k >= 1 && k < n);
    (0..n)
        .map(|i| {
            let mut dists: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (xs[i] - xs[j]).abs().max((ys[i] - ys[j]).abs()))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            dists[k - 1]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_counter_basic() {
        let c = MarginalCounter::new(&[1.0, 2.0, 2.0, 3.0, 10.0]);
        assert_eq!(c.len(), 5);
        // values within the open interval (0.5, 3.5): 1, 2, 2, 3
        assert_eq!(c.count_strictly_within(2.0, 1.5), 4);
        assert_eq!(c.count_within(2.0, 1.0), 4); // 1,2,2,3
        assert_eq!(c.count_strictly_within(2.0, 1.0), 2); // only the two 2s
        assert_eq!(c.count_equal(2.0, 0.0), 2);
        assert_eq!(c.count_strictly_within(100.0, 5.0), 0);
        assert_eq!(c.count_strictly_within(2.0, 0.0), 0);
    }

    #[test]
    fn knn_1d_simple() {
        let vals = [0.0, 1.0, 3.0, 7.0];
        let d1 = kth_nn_distances_1d(&vals, 1);
        assert_eq!(d1, vec![1.0, 1.0, 2.0, 4.0]);
        let d2 = kth_nn_distances_1d(&vals, 2);
        assert_eq!(d2, vec![3.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn knn_1d_with_ties() {
        let vals = [5.0, 5.0, 5.0, 6.0];
        let d = kth_nn_distances_1d(&vals, 2);
        assert_eq!(d, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn chebyshev_matches_bruteforce_on_random_points() {
        // Deterministic pseudo-random points without pulling in `rand` here.
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        let n = 300;
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        for k in [1, 3, 5] {
            let fast = kth_nn_distances_chebyshev(&xs, &ys, k);
            let slow = kth_nn_distances_chebyshev_bruteforce(&xs, &ys, k);
            for i in 0..n {
                assert!((fast[i] - slow[i]).abs() < 1e-12, "k={k}, i={i}");
            }
        }
    }

    #[test]
    fn chebyshev_with_duplicate_points_gives_zero() {
        let xs = [1.0, 1.0, 1.0, 2.0];
        let ys = [5.0, 5.0, 5.0, 9.0];
        let d = kth_nn_distances_chebyshev(&xs, &ys, 2);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 0.0);
        assert_eq!(d[2], 0.0);
        assert!(d[3] > 0.0);
    }

    #[test]
    fn parallel_distances_are_bitwise_equal_across_thread_counts() {
        let mut state = 0x51ce_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        let n = 800;
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next() * 4.0).collect();
        for k in [1usize, 3, 7] {
            let seq_2d = joinmi_par::with_threads(1, || kth_nn_distances_chebyshev(&xs, &ys, k));
            let par_2d = joinmi_par::with_threads(4, || kth_nn_distances_chebyshev(&xs, &ys, k));
            assert_eq!(seq_2d, par_2d, "2d k={k}");
            let seq_1d = joinmi_par::with_threads(1, || kth_nn_distances_1d(&xs, k));
            let par_1d = joinmi_par::with_threads(4, || kth_nn_distances_1d(&xs, k));
            assert_eq!(seq_1d, par_1d, "1d k={k}");
        }
    }

    #[test]
    fn bounded_max_heap_keeps_k_smallest() {
        let mut heap = BoundedMaxHeap::new(3);
        assert_eq!(heap.max(), f64::INFINITY);
        assert_eq!(heap.threshold(), f64::INFINITY);
        for d in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5] {
            heap.offer(d);
        }
        // k smallest of the stream are {0.5, 1.0, 2.0}: max (= k-th best) 2.0.
        assert_eq!(heap.max(), 2.0);
        assert_eq!(heap.threshold(), 2.0);
        heap.clear();
        heap.offer(9.0);
        assert_eq!(heap.max(), 9.0);
        assert!(!heap.is_full());
        assert_eq!(heap.threshold(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "k")]
    fn chebyshev_rejects_k_too_large() {
        let _ = kth_nn_distances_chebyshev(&[1.0, 2.0], &[1.0, 2.0], 2);
    }

    #[test]
    fn marginal_counter_empty() {
        let c = MarginalCounter::new(&[]);
        assert!(c.is_empty());
        assert_eq!(c.count_within(0.0, 1.0), 0);
    }
}
