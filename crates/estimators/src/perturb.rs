//! Tie-breaking perturbation.
//!
//! Section V-A of the paper: "A marginal variable can be made continuous via
//! perturbation, by breaking ties using random Gaussian noise of low magnitude
//! without any significant impact on the MI". This is how a discrete ordered
//! variable is fed to an estimator that expects a continuous marginal
//! (e.g. DC-KSG's continuous side).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workspace::EstimatorWorkspace;

/// Returns a copy of `values` with low-magnitude Gaussian noise added.
///
/// The noise standard deviation is `scale` times the smallest non-zero gap
/// between distinct values (or `scale` itself if all values are identical),
/// so the perturbation never reorders values that were distinct and only
/// breaks exact ties.
#[must_use]
pub fn perturb_ties(values: &[f64], scale: f64, seed: u64) -> Vec<f64> {
    perturb_ties_in(&mut Vec::new(), values, scale, seed)
}

/// [`perturb_ties`] against a caller-owned [`EstimatorWorkspace`]: the sorted
/// copy used for the minimum-gap scan lives in the workspace scratch buffer,
/// so batch callers (the evaluation grids' DC-KSG mode) stop allocating one
/// per trial.
#[must_use]
pub fn perturb_ties_with(
    ws: &mut EstimatorWorkspace,
    values: &[f64],
    scale: f64,
    seed: u64,
) -> Vec<f64> {
    perturb_ties_in(&mut ws.scratch, values, scale, seed)
}

fn perturb_ties_in(sorted: &mut Vec<f64>, values: &[f64], scale: f64, seed: u64) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    sorted.clear();
    sorted.extend_from_slice(values);
    sorted.sort_unstable_by(f64::total_cmp);
    let mut min_gap = f64::INFINITY;
    for w in sorted.windows(2) {
        let gap = w[1] - w[0];
        if gap > 0.0 && gap < min_gap {
            min_gap = gap;
        }
    }
    let sigma = if min_gap.is_finite() {
        scale * min_gap
    } else {
        scale
    };

    let mut rng = StdRng::seed_from_u64(seed);
    values
        .iter()
        .map(|&v| {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            v + sigma * z
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaks_ties() {
        let values = vec![1.0, 1.0, 1.0, 2.0, 2.0];
        let out = perturb_ties(&values, 1e-6, 42);
        let mut distinct = out.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        assert_eq!(distinct.len(), out.len());
    }

    #[test]
    fn noise_is_small_relative_to_gaps() {
        let values = vec![0.0, 10.0, 20.0, 20.0];
        let out = perturb_ties(&values, 1e-6, 1);
        for (orig, new) in values.iter().zip(&out) {
            assert!((orig - new).abs() < 0.001);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let values = vec![1.0, 2.0, 2.0];
        assert_eq!(
            perturb_ties(&values, 1e-6, 7),
            perturb_ties(&values, 1e-6, 7)
        );
        assert_ne!(
            perturb_ties(&values, 1e-6, 7),
            perturb_ties(&values, 1e-6, 8)
        );
    }

    #[test]
    fn all_identical_values_still_get_noise() {
        let values = vec![5.0; 10];
        let out = perturb_ties(&values, 1e-3, 3);
        let mut distinct = out.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn empty_input() {
        assert!(perturb_ties(&[], 1e-6, 0).is_empty());
    }

    #[test]
    fn workspace_variant_is_bit_identical() {
        let mut ws = crate::workspace::EstimatorWorkspace::new();
        let values = vec![1.0, 2.0, 2.0, 9.0, 9.0];
        // Reused twice: the second call must not see the first call's state.
        for seed in [3u64, 4] {
            let fresh = perturb_ties(&values, 1e-6, seed);
            let reused = perturb_ties_with(&mut ws, &values, 1e-6, seed);
            assert_eq!(fresh, reused);
        }
    }
}
