//! Top-k distance accumulators behind the Chebyshev window expansion.
//!
//! Two interchangeable implementations of [`KthAccumulator`]:
//!
//! * [`SmallTopK`] — a sorted array of at most 4 distances that lives
//!   entirely in registers; used for the small `k` every production call
//!   site passes (`DEFAULT_K` = 3). Insertion is a couple of compares, and
//!   reading the pruning threshold is a register read.
//! * [`BoundedMaxHeap`] — the general-`k` bounded max-heap.
//!
//! Both keep the k smallest distances offered, and the k-th smallest value
//! of a multiset is unique, so the two produce bit-identical results for any
//! offer order — the property the blocked kernel's batch visits rely on.

/// Keeps the k smallest distances offered and exposes the current k-th best
/// as a pruning threshold. Implementations are reused across query points via
/// [`reset`](Self::reset).
pub(crate) trait KthAccumulator {
    /// Empties the accumulator for the next query point.
    fn reset(&mut self);
    /// Current k-th best distance, or `+inf` while fewer than k are held.
    fn threshold(&self) -> f64;
    /// Offers a candidate distance, keeping only the k smallest.
    fn offer(&mut self, dist: f64);
    /// The final answer: the largest of the k kept distances.
    fn result(&self) -> f64;
}

/// Largest `k` served by [`SmallTopK`].
pub(crate) const SMALL_TOP_K_MAX: usize = 4;

/// Register-resident top-k for `k <= 4`: a sorted insertion array (ascending,
/// the k-th best last). No heap traffic, no sift loops — `offer` is one
/// compare in the common rejected case.
#[derive(Debug, Clone)]
pub(crate) struct SmallTopK {
    k: usize,
    filled: usize,
    top: [f64; SMALL_TOP_K_MAX],
}

impl SmallTopK {
    pub(crate) fn new(k: usize) -> Self {
        debug_assert!((1..=SMALL_TOP_K_MAX).contains(&k));
        Self {
            k,
            filled: 0,
            top: [f64::INFINITY; SMALL_TOP_K_MAX],
        }
    }
}

impl KthAccumulator for SmallTopK {
    #[inline]
    fn reset(&mut self) {
        self.filled = 0;
        self.top = [f64::INFINITY; SMALL_TOP_K_MAX];
    }

    #[inline]
    fn threshold(&self) -> f64 {
        if self.filled == self.k {
            self.top[self.k - 1]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn offer(&mut self, dist: f64) {
        if self.filled < self.k {
            let mut i = self.filled;
            while i > 0 && self.top[i - 1] > dist {
                self.top[i] = self.top[i - 1];
                i -= 1;
            }
            self.top[i] = dist;
            self.filled += 1;
        } else if dist < self.top[self.k - 1] {
            let mut i = self.k - 1;
            while i > 0 && self.top[i - 1] > dist {
                self.top[i] = self.top[i - 1];
                i -= 1;
            }
            self.top[i] = dist;
        }
    }

    #[inline]
    fn result(&self) -> f64 {
        if self.filled == 0 {
            f64::INFINITY
        } else {
            self.top[self.filled - 1]
        }
    }
}

/// A bounded max-heap of the `k` smallest distances seen so far, backed by a
/// plain `Vec<f64>` that is **reused across points** (cleared, not dropped).
///
/// Replaces the former per-point `BinaryHeap<OrdF64>`: no wrapper type, no
/// allocation per query point, and the root is always the current k-th best
/// distance (the pruning threshold). The k-th smallest value of a multiset is
/// unique, so results are identical to the `BinaryHeap` implementation — and
/// independent of the order in which candidates are offered, which is what
/// lets the blocked kernel visit candidates in batches.
#[derive(Debug, Clone)]
pub(crate) struct BoundedMaxHeap {
    k: usize,
    heap: Vec<f64>,
}

impl BoundedMaxHeap {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// Empties the heap for the next query point, keeping the allocation.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }

    #[inline]
    pub(crate) fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Current k-th best distance: the maximum kept, or infinity while the
    /// heap is not yet full.
    #[inline]
    pub(crate) fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap[0]
        } else {
            f64::INFINITY
        }
    }

    /// The final answer for a point: the largest of the k kept distances.
    #[inline]
    pub(crate) fn max(&self) -> f64 {
        self.heap.first().copied().unwrap_or(f64::INFINITY)
    }

    /// Offers a candidate distance, keeping only the k smallest.
    #[inline]
    pub(crate) fn offer(&mut self, dist: f64) {
        if !self.is_full() {
            self.heap.push(dist);
            self.sift_up(self.heap.len() - 1);
        } else if dist < self.heap[0] {
            self.heap[0] = dist;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] <= self.heap[parent] {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let largest_child = if right < n && self.heap[right] > self.heap[left] {
                right
            } else {
                left
            };
            if self.heap[largest_child] <= self.heap[i] {
                break;
            }
            self.heap.swap(i, largest_child);
            i = largest_child;
        }
    }
}

impl KthAccumulator for BoundedMaxHeap {
    #[inline]
    fn reset(&mut self) {
        self.clear();
    }

    #[inline]
    fn threshold(&self) -> f64 {
        BoundedMaxHeap::threshold(self)
    }

    #[inline]
    fn offer(&mut self, dist: f64) {
        BoundedMaxHeap::offer(self, dist);
    }

    #[inline]
    fn result(&self) -> f64 {
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_max_heap_keeps_k_smallest() {
        let mut heap = BoundedMaxHeap::new(3);
        assert_eq!(heap.max(), f64::INFINITY);
        assert_eq!(heap.threshold(), f64::INFINITY);
        for d in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5] {
            heap.offer(d);
        }
        // k smallest of the stream are {0.5, 1.0, 2.0}: max (= k-th best) 2.0.
        assert_eq!(heap.max(), 2.0);
        assert_eq!(heap.threshold(), 2.0);
        heap.clear();
        heap.offer(9.0);
        assert_eq!(heap.max(), 9.0);
        assert!(!heap.is_full());
        assert_eq!(heap.threshold(), f64::INFINITY);
    }

    #[test]
    fn offer_order_does_not_change_the_kth_best() {
        let distances = [3.0, 0.25, 7.0, 0.25, 1.5, 6.0, 0.75];
        let mut forward = BoundedMaxHeap::new(4);
        let mut backward = BoundedMaxHeap::new(4);
        for &d in &distances {
            forward.offer(d);
        }
        for &d in distances.iter().rev() {
            backward.offer(d);
        }
        assert_eq!(forward.max().to_bits(), backward.max().to_bits());
    }

    #[test]
    fn small_top_k_matches_heap_on_random_streams() {
        let mut state = 0xd1ce_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        for k in 1..=SMALL_TOP_K_MAX {
            let mut small = SmallTopK::new(k);
            let mut heap = BoundedMaxHeap::new(k);
            for round in 0..3 {
                small.reset();
                KthAccumulator::reset(&mut heap);
                for _ in 0..(20 + round * 37) {
                    let d = next();
                    small.offer(d);
                    KthAccumulator::offer(&mut heap, d);
                }
                assert_eq!(small.result().to_bits(), heap.max().to_bits(), "k={k}");
                assert_eq!(
                    small.threshold().to_bits(),
                    BoundedMaxHeap::threshold(&heap).to_bits(),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn small_top_k_partial_fill() {
        let mut small = SmallTopK::new(3);
        assert_eq!(small.result(), f64::INFINITY);
        assert_eq!(small.threshold(), f64::INFINITY);
        small.offer(2.0);
        small.offer(1.0);
        // Not yet full: threshold stays infinite, result is the worst held.
        assert_eq!(small.threshold(), f64::INFINITY);
        assert_eq!(small.result(), 2.0);
        small.offer(3.0);
        assert_eq!(small.threshold(), 3.0);
        assert_eq!(small.result(), 3.0);
        small.offer(0.5);
        assert_eq!(small.result(), 2.0);
    }
}
