//! Nearest-neighbour search helpers for the KSG-family estimators.
//!
//! All KSG variants need two primitives:
//!
//! 1. for every point `i`, the distance to its `k`-th nearest neighbour in
//!    the *joint* space under the Chebyshev (max) metric, excluding the point
//!    itself ([`kth_nn_distances_chebyshev`], [`kth_nn_distances_1d`]);
//! 2. for every point `i`, the number of points whose marginal coordinate
//!    lies within a given radius ([`MarginalCounter`]).
//!
//! The joint search sorts points by their x coordinate and expands a window
//! outwards from each query point, pruning as soon as the x-distance alone
//! exceeds the current k-th best — the classic trick that makes the search
//! near-linear for well-spread data while remaining exactly correct in the
//! worst case.
//!
//! The module is organised as a small kernel engine (PR 4):
//!
//! * `SortedJoint` / `RankedMarginal` are **sort-once views**: the index
//!   order, per-point ranks, and value-sorted copies that every kernel and
//!   every marginal count shares. [`crate::workspace::EstimatorWorkspace`]
//!   owns one of each and reuses their buffers across estimator calls, so an
//!   estimate sorts each column exactly once (the free functions here build a
//!   throwaway view per call for compatibility).
//! * the `blocked` submodule holds the block-batched window-expansion
//!   kernels: candidates are pulled in blocks of 8 from contiguous x-sorted
//!   arrays, distances for a whole block are computed by the autovectorizable
//!   `lanes` helpers, and blocks are pruned against the current k-th-best
//!   threshold with one compare. Results are bit-for-bit identical to the scalar expansion
//!   (kept as [`kth_nn_distances_chebyshev_scalar`] /
//!   [`kth_nn_distances_1d_scalar`] oracles), because the k-th smallest
//!   distance of a multiset does not depend on visit order.
//! * Marginal counts carry each point's already-known rank into the search
//!   (`RankedMarginal::count_strictly_within` and friends), replacing two
//!   full-range binary searches per point with two half-range ones.
//!
//! Every point's search is independent, so the distance kernels chunk the
//! per-point loop across [`joinmi_par`] workers (above a small-input cutoff),
//! one reusable bounded max-heap per worker, and results are written back in
//! input order — parallel output is bit-for-bit equal to the sequential one.

mod blocked;
mod heap;
mod lanes;

use heap::BoundedMaxHeap;

/// Maps a float to a `u64` whose unsigned order equals [`f64::total_cmp`]
/// order (IEEE 754 `totalOrder`: flip all bits of negatives, flip the sign
/// bit of non-negatives).
///
/// Sorting `(key, index)` integer pairs is substantially faster than an
/// index sort with a float comparator — the comparator's random accesses
/// into the coordinate slice miss cache, while integer pairs sort in place —
/// and it breaks ties by original index, making the layout of duplicate
/// values deterministic instead of unstable-sort-arbitrary.
#[inline]
fn total_order_key(v: f64) -> u64 {
    let b = v.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Sorts `(total_order_key, index)` pairs for `values` into `keys` (reused
/// buffer). Panics if the sample exceeds `u32` indexing — 4 billion rows is
/// far beyond any estimator input.
fn sort_order_keys(keys: &mut Vec<(u64, u32)>, values: &[f64]) {
    assert!(
        values.len() <= u32::MAX as usize,
        "sample too large for u32 sort indices"
    );
    keys.clear();
    keys.extend(
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (total_order_key(v), i as u32)),
    );
    keys.sort_unstable();
}

// ---------------------------------------------------------------------------
// Counting over sorted coordinates.
// ---------------------------------------------------------------------------

/// `|{z : |z − center| < radius}|` over a sorted slice (full-range searches).
fn count_strictly_within_sorted(sorted: &[f64], center: f64, radius: f64) -> usize {
    if radius <= 0.0 {
        return 0;
    }
    let lo = sorted.partition_point(|&v| v <= center - radius);
    let hi = sorted.partition_point(|&v| v < center + radius);
    hi - lo
}

/// `|{z : |z − center| <= radius}|` over a sorted slice (full-range searches).
fn count_within_sorted(sorted: &[f64], center: f64, radius: f64) -> usize {
    let lo = sorted.partition_point(|&v| v < center - radius);
    let hi = sorted.partition_point(|&v| v <= center + radius);
    hi - lo
}

/// Strict-radius count with a rank hint: `rank` must hold a value equal to
/// `center` (the query point's own position in the sorted layout) and
/// `radius` must be positive, so the lower boundary lies in `[0, rank]` and
/// the upper one in `[rank, n]` — each binary search scans half the range.
pub(crate) fn count_strictly_within_at(
    sorted: &[f64],
    rank: usize,
    center: f64,
    radius: f64,
) -> usize {
    debug_assert!(radius > 0.0);
    debug_assert!(sorted[rank] == center);
    let lo = sorted[..rank].partition_point(|&v| v <= center - radius);
    let hi = rank + sorted[rank..].partition_point(|&v| v < center + radius);
    hi - lo
}

/// Inclusive-radius count with a rank hint (`radius >= 0`; see
/// [`count_strictly_within_at`] for the contract).
pub(crate) fn count_within_at(sorted: &[f64], rank: usize, center: f64, radius: f64) -> usize {
    debug_assert!(radius >= 0.0);
    debug_assert!(sorted[rank] == center);
    let lo = sorted[..rank].partition_point(|&v| v < center - radius);
    let hi = rank + sorted[rank..].partition_point(|&v| v <= center + radius);
    hi - lo
}

/// Number of values exactly equal to the one at `rank`.
pub(crate) fn count_equal_at(sorted: &[f64], rank: usize, center: f64) -> usize {
    count_within_at(sorted, rank, center, 0.0)
}

/// Counts points within a radius of a centre along one marginal, in
/// `O(log n)` per query, over a pre-sorted copy of the coordinates.
#[derive(Debug, Clone)]
pub struct MarginalCounter {
    sorted: Vec<f64>,
}

impl MarginalCounter {
    /// Builds a counter over the given coordinates (need not be sorted).
    #[must_use]
    pub fn new(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of points `z` with `|z − center| < radius` (strict), including
    /// any points equal to the centre itself.
    #[must_use]
    pub fn count_strictly_within(&self, center: f64, radius: f64) -> usize {
        count_strictly_within_sorted(&self.sorted, center, radius)
    }

    /// Number of points `z` with `|z − center| <= radius`, including points
    /// equal to the centre.
    #[must_use]
    pub fn count_within(&self, center: f64, radius: f64) -> usize {
        count_within_sorted(&self.sorted, center, radius)
    }

    /// Number of points exactly equal to the centre (within `tolerance`).
    #[must_use]
    pub fn count_equal(&self, center: f64, tolerance: f64) -> usize {
        self.count_within(center, tolerance)
    }

    /// Total number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if there are no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Sort-once views.
// ---------------------------------------------------------------------------

/// X-sorted view of a joint `(x, y)` sample: the index order, each point's
/// rank, and both coordinate columns gathered into x-sorted layout so the
/// window expansion reads contiguous memory. All buffers are reused across
/// [`prepare`](Self::prepare) calls.
#[derive(Debug, Clone, Default)]
pub(crate) struct SortedJoint {
    keys: Vec<(u64, u32)>,
    pos: Vec<usize>,
    x_by_rank: Vec<f64>,
    y_by_rank: Vec<f64>,
}

impl SortedJoint {
    /// Rebuilds the view for a new sample, reusing the allocations.
    pub(crate) fn prepare(&mut self, xs: &[f64], ys: &[f64]) {
        assert_eq!(
            xs.len(),
            ys.len(),
            "coordinate slices must have equal length"
        );
        let n = xs.len();
        sort_order_keys(&mut self.keys, xs);
        self.pos.clear();
        self.pos.resize(n, 0);
        self.x_by_rank.clear();
        self.y_by_rank.clear();
        for (p, &(_, i)) in self.keys.iter().enumerate() {
            let i = i as usize;
            self.pos[i] = p;
            self.x_by_rank.push(xs[i]);
            self.y_by_rank.push(ys[i]);
        }
    }

    /// Chebyshev k-th-NN distances in original index order (blocked kernel).
    ///
    /// # Panics
    /// Panics if `k == 0` or `k >= n`.
    pub(crate) fn kth_nn_distances(&self, k: usize) -> Vec<f64> {
        let n = self.pos.len();
        assert!(k >= 1, "k must be at least 1");
        assert!(
            k < n,
            "k ({k}) must be smaller than the number of points ({n})"
        );
        blocked::chebyshev_kth_all(&self.x_by_rank, &self.y_by_rank, &self.pos, k)
    }

    /// Strict-radius count on the **x marginal** for point `i` (the x-sorted
    /// copy doubles as the sorted x marginal). `radius` must be positive.
    pub(crate) fn x_count_strictly_within(&self, i: usize, radius: f64) -> usize {
        let rank = self.pos[i];
        count_strictly_within_at(&self.x_by_rank, rank, self.x_by_rank[rank], radius)
    }

    /// Number of points sharing point `i`'s exact x value.
    pub(crate) fn x_count_equal(&self, i: usize) -> usize {
        let rank = self.pos[i];
        count_equal_at(&self.x_by_rank, rank, self.x_by_rank[rank])
    }
}

/// Value-sorted view of one marginal with per-point ranks, so each count
/// query starts from the point's own position instead of searching the full
/// range twice. Buffers are reused across [`prepare`](Self::prepare) calls.
#[derive(Debug, Clone, Default)]
pub(crate) struct RankedMarginal {
    keys: Vec<(u64, u32)>,
    rank: Vec<usize>,
    sorted: Vec<f64>,
}

impl RankedMarginal {
    /// Rebuilds the view for a new sample, reusing the allocations.
    pub(crate) fn prepare(&mut self, values: &[f64]) {
        let n = values.len();
        sort_order_keys(&mut self.keys, values);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.sorted.clear();
        for (p, &(_, i)) in self.keys.iter().enumerate() {
            let i = i as usize;
            self.rank[i] = p;
            self.sorted.push(values[i]);
        }
    }

    /// Strict-radius count around point `i`'s value (`radius > 0`).
    pub(crate) fn count_strictly_within(&self, i: usize, radius: f64) -> usize {
        let rank = self.rank[i];
        count_strictly_within_at(&self.sorted, rank, self.sorted[rank], radius)
    }

    /// Inclusive-radius count around point `i`'s value (`radius >= 0`).
    pub(crate) fn count_within(&self, i: usize, radius: f64) -> usize {
        let rank = self.rank[i];
        count_within_at(&self.sorted, rank, self.sorted[rank], radius)
    }

    /// Number of points sharing point `i`'s exact value.
    pub(crate) fn count_equal(&self, i: usize) -> usize {
        let rank = self.rank[i];
        count_equal_at(&self.sorted, rank, self.sorted[rank])
    }

    /// 1-D k-th-NN distances in original index order (blocked window-scan
    /// kernel over the sorted copy, scattered back through the order).
    ///
    /// # Panics
    /// Panics if `k == 0` or `k >= n`.
    pub(crate) fn kth_nn_distances(&self, k: usize) -> Vec<f64> {
        let n = self.sorted.len();
        assert!(k >= 1, "k must be at least 1");
        assert!(
            k < n,
            "k ({k}) must be smaller than the number of points ({n})"
        );
        let by_position = blocked::kth_1d_by_position(&self.sorted, k);
        // The rank array is the inverse of the sort order: sequential writes,
        // gathered reads.
        let mut result = vec![0.0f64; n];
        for (i, slot) in result.iter_mut().enumerate() {
            *slot = by_position[self.rank[i]];
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Public kernel entry points.
// ---------------------------------------------------------------------------

/// For each point `(xs[i], ys[i])`, returns the Chebyshev distance to its
/// `k`-th nearest neighbour among the *other* points.
///
/// Ties are handled naturally: if several points coincide with the query, the
/// returned distance can be `0.0` (MixedKSG relies on this).
///
/// # Panics
/// Panics if `xs.len() != ys.len()`, if `k == 0`, or if `k >= xs.len()`.
#[must_use]
pub fn kth_nn_distances_chebyshev(xs: &[f64], ys: &[f64], k: usize) -> Vec<f64> {
    let mut joint = SortedJoint::default();
    joint.prepare(xs, ys);
    joint.kth_nn_distances(k)
}

/// For each value, the distance to its `k`-th nearest neighbour among the
/// other values of the same (1-dimensional) sample.
///
/// # Panics
/// Panics if `k == 0` or `k >= values.len()`.
#[must_use]
pub fn kth_nn_distances_1d(values: &[f64], k: usize) -> Vec<f64> {
    let mut marginal = RankedMarginal::default();
    marginal.prepare(values);
    marginal.kth_nn_distances(k)
}

/// Brute-force reference for the Chebyshev k-NN distances (used in tests and
/// kept public for verification experiments).
#[must_use]
pub fn kth_nn_distances_chebyshev_bruteforce(xs: &[f64], ys: &[f64], k: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(k >= 1 && k < n);
    (0..n)
        .map(|i| {
            let mut dists: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (xs[i] - xs[j]).abs().max((ys[i] - ys[j]).abs()))
                .collect();
            dists.sort_unstable_by(f64::total_cmp);
            dists[k - 1]
        })
        .collect()
}

/// The pre-refactor scalar Chebyshev expansion (one candidate per iteration,
/// gathering through the index order), kept as a **bit-for-bit oracle** for
/// the blocked kernel in tests and verification experiments.
#[must_use]
pub fn kth_nn_distances_chebyshev_scalar(xs: &[f64], ys: &[f64], k: usize) -> Vec<f64> {
    assert_eq!(
        xs.len(),
        ys.len(),
        "coordinate slices must have equal length"
    );
    let n = xs.len();
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k < n,
        "k ({k}) must be smaller than the number of points ({n})"
    );

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut pos = vec![0usize; n];
    for (p, &idx) in order.iter().enumerate() {
        pos[idx] = p;
    }

    joinmi_par::par_map_index_with(
        n,
        || BoundedMaxHeap::new(k),
        |heap, i| {
            let p = pos[i];
            let (xi, yi) = (xs[i], ys[i]);
            heap.clear();

            let mut left = p;
            let mut right = p + 1;
            loop {
                let threshold = heap.threshold();
                let left_dx = if left > 0 {
                    (xi - xs[order[left - 1]]).abs()
                } else {
                    f64::INFINITY
                };
                let right_dx = if right < n {
                    (xs[order[right]] - xi).abs()
                } else {
                    f64::INFINITY
                };

                if left_dx > threshold && right_dx > threshold {
                    break;
                }
                if left_dx == f64::INFINITY && right_dx == f64::INFINITY {
                    break;
                }

                let j = if left_dx <= right_dx {
                    left -= 1;
                    order[left]
                } else {
                    let j = order[right];
                    right += 1;
                    j
                };
                let dist = (xi - xs[j]).abs().max((yi - ys[j]).abs());
                heap.offer(dist);
            }
            heap.max()
        },
    )
}

/// The pre-refactor scalar 1-D expansion (greedy one-neighbour-at-a-time),
/// kept as a **bit-for-bit oracle** for the blocked window-scan kernel.
#[must_use]
pub fn kth_nn_distances_1d_scalar(values: &[f64], k: usize) -> Vec<f64> {
    let n = values.len();
    assert!(k >= 1, "k must be at least 1");
    assert!(
        k < n,
        "k ({k}) must be smaller than the number of points ({n})"
    );

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| values[a].total_cmp(&values[b]));

    let by_position = joinmi_par::par_map_index(n, |p| {
        let v = values[order[p]];
        let mut left = p;
        let mut right = p + 1;
        let mut kth = 0.0f64;
        for _ in 0..k {
            let left_d = if left > 0 {
                (v - values[order[left - 1]]).abs()
            } else {
                f64::INFINITY
            };
            let right_d = if right < n {
                (values[order[right]] - v).abs()
            } else {
                f64::INFINITY
            };
            if left_d <= right_d {
                kth = left_d;
                left -= 1;
            } else {
                kth = right_d;
                right += 1;
            }
        }
        kth
    });

    let mut result = vec![0.0f64; n];
    for (p, &idx) in order.iter().enumerate() {
        result[idx] = by_position[p];
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_points(seed: u64, n: usize, y_scale: f64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next() * y_scale).collect();
        (xs, ys)
    }

    #[test]
    fn marginal_counter_basic() {
        let c = MarginalCounter::new(&[1.0, 2.0, 2.0, 3.0, 10.0]);
        assert_eq!(c.len(), 5);
        // values within the open interval (0.5, 3.5): 1, 2, 2, 3
        assert_eq!(c.count_strictly_within(2.0, 1.5), 4);
        assert_eq!(c.count_within(2.0, 1.0), 4); // 1,2,2,3
        assert_eq!(c.count_strictly_within(2.0, 1.0), 2); // only the two 2s
        assert_eq!(c.count_equal(2.0, 0.0), 2);
        assert_eq!(c.count_strictly_within(100.0, 5.0), 0);
        assert_eq!(c.count_strictly_within(2.0, 0.0), 0);
    }

    #[test]
    fn rank_hinted_counts_match_full_searches() {
        let (values, _) = lcg_points(0xabcd, 400, 1.0);
        // Quantize to force heavy ties alongside distinct values.
        let values: Vec<f64> = values.iter().map(|v| (v * 25.0).floor() / 25.0).collect();
        let counter = MarginalCounter::new(&values);
        let mut marginal = RankedMarginal::default();
        marginal.prepare(&values);
        for i in (0..values.len()).step_by(7) {
            for radius in [1e-9, 0.04, 0.3, 2.0] {
                assert_eq!(
                    marginal.count_strictly_within(i, radius),
                    counter.count_strictly_within(values[i], radius),
                    "strict i={i} r={radius}"
                );
                assert_eq!(
                    marginal.count_within(i, radius),
                    counter.count_within(values[i], radius),
                    "within i={i} r={radius}"
                );
            }
            assert_eq!(
                marginal.count_equal(i),
                counter.count_equal(values[i], 0.0),
                "equal i={i}"
            );
        }
    }

    #[test]
    fn knn_1d_simple() {
        let vals = [0.0, 1.0, 3.0, 7.0];
        let d1 = kth_nn_distances_1d(&vals, 1);
        assert_eq!(d1, vec![1.0, 1.0, 2.0, 4.0]);
        let d2 = kth_nn_distances_1d(&vals, 2);
        assert_eq!(d2, vec![3.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn knn_1d_with_ties() {
        let vals = [5.0, 5.0, 5.0, 6.0];
        let d = kth_nn_distances_1d(&vals, 2);
        assert_eq!(d, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn knn_1d_matches_scalar_oracle_bitwise() {
        let (values, _) = lcg_points(0xfeed, 900, 1.0);
        for k in [1usize, 2, 5, 16] {
            let blocked = kth_nn_distances_1d(&values, k);
            let scalar = kth_nn_distances_1d_scalar(&values, k);
            assert!(
                blocked
                    .iter()
                    .zip(&scalar)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "k={k}"
            );
        }
    }

    #[test]
    fn chebyshev_matches_bruteforce_on_random_points() {
        let (xs, ys) = lcg_points(0x1234_5678, 300, 10.0);
        let n = xs.len();
        for k in [1, 3, 5] {
            let fast = kth_nn_distances_chebyshev(&xs, &ys, k);
            let slow = kth_nn_distances_chebyshev_bruteforce(&xs, &ys, k);
            for i in 0..n {
                assert!((fast[i] - slow[i]).abs() < 1e-12, "k={k}, i={i}");
            }
        }
    }

    #[test]
    fn chebyshev_matches_scalar_oracle_bitwise() {
        let (xs, ys) = lcg_points(0x5eed, 700, 3.0);
        for k in [1usize, 3, 7, 20] {
            let blocked = kth_nn_distances_chebyshev(&xs, &ys, k);
            let scalar = kth_nn_distances_chebyshev_scalar(&xs, &ys, k);
            assert!(
                blocked
                    .iter()
                    .zip(&scalar)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "k={k}"
            );
        }
    }

    #[test]
    fn chebyshev_blocked_handles_heavy_ties_bitwise() {
        // Mixture columns from non-unique joins: few distinct values, many
        // exact copies, so many points have ρ_i = 0.
        let (us, vs) = lcg_points(0x71e5, 600, 1.0);
        let xs: Vec<f64> = us.iter().map(|u| (u * 6.0).floor()).collect();
        let ys: Vec<f64> = vs.iter().map(|v| (v * 4.0).floor()).collect();
        for k in [1usize, 3, 8] {
            let blocked = kth_nn_distances_chebyshev(&xs, &ys, k);
            let scalar = kth_nn_distances_chebyshev_scalar(&xs, &ys, k);
            assert!(
                blocked
                    .iter()
                    .zip(&scalar)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "k={k}"
            );
            assert!(blocked.contains(&0.0), "ties must collapse ρ");
        }
    }

    #[test]
    fn chebyshev_with_duplicate_points_gives_zero() {
        let xs = [1.0, 1.0, 1.0, 2.0];
        let ys = [5.0, 5.0, 5.0, 9.0];
        let d = kth_nn_distances_chebyshev(&xs, &ys, 2);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 0.0);
        assert_eq!(d[2], 0.0);
        assert!(d[3] > 0.0);
    }

    #[test]
    fn parallel_distances_are_bitwise_equal_across_thread_counts() {
        let (xs, ys) = lcg_points(0x51ce, 800, 4.0);
        for k in [1usize, 3, 7] {
            let seq_2d = joinmi_par::with_threads(1, || kth_nn_distances_chebyshev(&xs, &ys, k));
            let par_2d = joinmi_par::with_threads(4, || kth_nn_distances_chebyshev(&xs, &ys, k));
            assert_eq!(seq_2d, par_2d, "2d k={k}");
            let seq_1d = joinmi_par::with_threads(1, || kth_nn_distances_1d(&xs, k));
            let par_1d = joinmi_par::with_threads(4, || kth_nn_distances_1d(&xs, k));
            assert_eq!(seq_1d, par_1d, "1d k={k}");
        }
    }

    #[test]
    fn prepared_views_are_reusable_across_samples() {
        // A workspace-owned view must forget the previous (larger) sample
        // completely when re-prepared.
        let mut joint = SortedJoint::default();
        let mut marginal = RankedMarginal::default();
        let (xs_a, ys_a) = lcg_points(1, 120, 2.0);
        joint.prepare(&xs_a, &ys_a);
        marginal.prepare(&ys_a);
        let _ = joint.kth_nn_distances(3);

        let (xs_b, ys_b) = lcg_points(2, 40, 1.0);
        joint.prepare(&xs_b, &ys_b);
        marginal.prepare(&ys_b);
        assert_eq!(
            joint.kth_nn_distances(2),
            kth_nn_distances_chebyshev(&xs_b, &ys_b, 2)
        );
        assert_eq!(marginal.kth_nn_distances(2), kth_nn_distances_1d(&ys_b, 2));
        let counter = MarginalCounter::new(&ys_b);
        for (i, &v) in ys_b.iter().enumerate() {
            assert_eq!(
                marginal.count_within(i, 0.25),
                counter.count_within(v, 0.25)
            );
        }
    }

    #[test]
    #[should_panic(expected = "k")]
    fn chebyshev_rejects_k_too_large() {
        let _ = kth_nn_distances_chebyshev(&[1.0, 2.0], &[1.0, 2.0], 2);
    }

    #[test]
    fn marginal_counter_empty() {
        let c = MarginalCounter::new(&[]);
        assert!(c.is_empty());
        assert_eq!(c.count_within(0.0, 1.0), 0);
    }
}
