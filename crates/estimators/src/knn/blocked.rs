//! Block-batched window-expansion kernels.
//!
//! The scalar expansion pulls **one** candidate per iteration, with a branch
//! deciding the side, a gather through the `order` permutation, and a heap
//! offer — none of which a compiler can vectorize. The blocked kernels here
//! restructure the inner loop:
//!
//! * coordinates are pre-gathered into x-sorted arrays once per call
//!   ([`super::SortedJoint`]), so the window reads are contiguous;
//! * candidates are pulled in blocks of [`BLOCK`] per side and their
//!   Chebyshev distances are computed by [`block_dists`], a straight-line
//!   composition of the 4-wide [`lanes`](super::lanes) helpers that LLVM
//!   lowers to packed SIMD (`#[inline(never)]` keeps it a separate
//!   optimization unit — inlined into the branchy expansion loop, the SLP
//!   vectorizer gives up and emits scalar code);
//! * a whole block is pruned against the current k-th-best threshold with a
//!   single compare of its lane minimum; only surviving blocks fall back to
//!   per-element [`KthAccumulator::offer`];
//! * the production neighbour counts (`DEFAULT_K` = 3) keep their top-k in a
//!   register-resident sorted array ([`SmallTopK`]) instead of a heap.
//!
//! Correctness does not depend on the visit order: the k-th smallest element
//! of a distance multiset is unique, and a block is only skipped when every
//! distance in it provably exceeds the current k-th best (x-distances grow
//! monotonically away from the query position, and the Chebyshev distance is
//! bounded below by the x-distance). The blocked kernels are therefore
//! **bit-for-bit identical** to the scalar oracles — pinned by the tests in
//! [`super`] and by the `knn_blocked_*` proptests.

use super::heap::{BoundedMaxHeap, KthAccumulator, SmallTopK, SMALL_TOP_K_MAX};
use super::lanes;
use super::lanes::LANES;

/// Candidates pulled from one side per expansion step: two lane batches.
const BLOCK: usize = 2 * LANES;

/// Per-point loops shorter than this run sequentially — below it, the scoped
/// spawn + chunk coordination of `joinmi_par` costs more than the work (the
/// per-group 1-D searches inside DC-KSG are the common small case). The
/// per-item code is identical on both paths, so the cutoff never changes
/// results.
const PAR_CUTOFF: usize = 512;

/// Maps `f` over `0..n` with a per-worker scratch, sequentially below
/// [`PAR_CUTOFF`].
fn map_index_with<S, U, I, F>(n: usize, init: I, f: F) -> Vec<U>
where
    S: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    if n < PAR_CUTOFF {
        let mut scratch = init();
        (0..n).map(|i| f(&mut scratch, i)).collect()
    } else {
        joinmi_par::par_map_index_with(n, init, f)
    }
}

/// Chebyshev distances of one block of candidates to the query `(xi, yi)`.
///
/// `#[inline(never)]` is load-bearing: as its own codegen unit this compiles
/// to packed `subpd`/`andpd`/`maxpd`; inlined into the expansion loop's
/// control flow, LLVM's SLP vectorizer emits unrolled scalar code instead
/// (measured, not speculation).
#[inline(never)]
fn block_dists(x: &[f64; BLOCK], y: &[f64; BLOCK], xi: f64, yi: f64) -> [f64; BLOCK] {
    let lo = lanes::chebyshev(
        x[..LANES].try_into().expect("half block"),
        y[..LANES].try_into().expect("half block"),
        xi,
        yi,
    );
    let hi = lanes::chebyshev(
        x[LANES..].try_into().expect("half block"),
        y[LANES..].try_into().expect("half block"),
        xi,
        yi,
    );
    let mut d = [0.0f64; BLOCK];
    d[..LANES].copy_from_slice(&lo);
    d[LANES..].copy_from_slice(&hi);
    d
}

/// Horizontal minimum of a block (pairwise across the two lane halves).
#[inline(always)]
fn block_min(d: &[f64; BLOCK]) -> f64 {
    let m = [
        d[0].min(d[4]),
        d[1].min(d[5]),
        d[2].min(d[6]),
        d[3].min(d[7]),
    ];
    lanes::min_lane(&m)
}

/// Offers one full block: one packed distance computation, one min-compare to
/// prune the whole block, per-element offers only for surviving blocks.
#[inline(always)]
fn offer_block<A: KthAccumulator>(
    x: &[f64; BLOCK],
    y: &[f64; BLOCK],
    xi: f64,
    yi: f64,
    acc: &mut A,
) {
    let d = block_dists(x, y, xi, yi);
    // threshold() is +inf while the accumulator is filling, so nothing is
    // skipped early; once full, only a distance below the k-th best matters.
    if block_min(&d) < acc.threshold() {
        for &dist in &d {
            acc.offer(dist);
        }
    }
}

/// Scalar tail for the (at most `BLOCK − 1`) candidates left at an array end.
#[inline(always)]
fn offer_tail<A: KthAccumulator>(xs: &[f64], ys: &[f64], xi: f64, yi: f64, acc: &mut A) {
    for (&x, &y) in xs.iter().zip(ys) {
        acc.offer((x - xi).abs().max((y - yi).abs()));
    }
}

/// The Chebyshev k-th-NN distance of the point at sorted position `p`, over
/// coordinates laid out in x-sorted order.
///
/// Expansion is **lockstep**: each round pulls one block from *every* side
/// whose nearest unvisited x-distance is still within the threshold, instead
/// of branching per candidate to pick the nearer side. The per-candidate
/// side-selection branch of the scalar kernel is data-dependent and
/// mispredicts constantly; the lockstep round structure replaces it with two
/// predictable per-round checks. A side may overshoot the optimal window by
/// at most one block, which the block prune rejects with a single compare —
/// and since every candidate with a distance below the final k-th best is
/// still visited, the result is exact.
fn chebyshev_kth_at<A: KthAccumulator>(
    x_by_rank: &[f64],
    y_by_rank: &[f64],
    p: usize,
    acc: &mut A,
) -> f64 {
    let n = x_by_rank.len();
    let (xi, yi) = (x_by_rank[p], y_by_rank[p]);
    acc.reset();

    // Unvisited candidates: [0, left) on the left, [right, n) on the right.
    // While the accumulator is filling its threshold is +inf, so both sides
    // stay alive until they are exhausted; afterwards a side dies as soon as
    // its nearest unvisited x-distance (a lower bound for everything further
    // out — the arrays are sorted) exceeds the current k-th best.
    let mut left = p;
    let mut right = p + 1;
    loop {
        let threshold = acc.threshold();
        let left_alive = left > 0 && xi - x_by_rank[left - 1] <= threshold;
        let right_alive = right < n && x_by_rank[right] - xi <= threshold;
        if !left_alive && !right_alive {
            break;
        }

        if left_alive {
            if left >= BLOCK {
                let lo = left - BLOCK;
                offer_block(
                    x_by_rank[lo..left].try_into().expect("full block"),
                    y_by_rank[lo..left].try_into().expect("full block"),
                    xi,
                    yi,
                    acc,
                );
                left = lo;
            } else {
                offer_tail(&x_by_rank[..left], &y_by_rank[..left], xi, yi, acc);
                left = 0;
            }
        }
        if right_alive {
            // The left pull may have tightened the threshold; re-check before
            // spending a block on the right side.
            let threshold = acc.threshold();
            if x_by_rank[right] - xi <= threshold {
                if n - right >= BLOCK {
                    let hi = right + BLOCK;
                    offer_block(
                        x_by_rank[right..hi].try_into().expect("full block"),
                        y_by_rank[right..hi].try_into().expect("full block"),
                        xi,
                        yi,
                        acc,
                    );
                    right = hi;
                } else {
                    offer_tail(&x_by_rank[right..], &y_by_rank[right..], xi, yi, acc);
                    right = n;
                }
            }
        }
    }
    acc.result()
}

/// Chebyshev k-th-NN distances for every point, returned in **original index
/// order** (`pos[i]` is point `i`'s rank in the x-sorted layout).
///
/// Small `k` (every production call: `DEFAULT_K` = 3) uses the register
/// top-k accumulator; larger `k` the bounded max-heap. Both keep the k
/// smallest offered distances, so the choice never changes the result.
pub(crate) fn chebyshev_kth_all(
    x_by_rank: &[f64],
    y_by_rank: &[f64],
    pos: &[usize],
    k: usize,
) -> Vec<f64> {
    if k <= SMALL_TOP_K_MAX {
        map_index_with(
            pos.len(),
            || SmallTopK::new(k),
            |acc, i| chebyshev_kth_at(x_by_rank, y_by_rank, pos[i], acc),
        )
    } else {
        map_index_with(
            pos.len(),
            || BoundedMaxHeap::new(k),
            |acc, i| chebyshev_kth_at(x_by_rank, y_by_rank, pos[i], acc),
        )
    }
}

/// The 1-D k-th-NN distance of the value at sorted position `p`.
///
/// In one dimension the k nearest neighbours of a sorted sample always form a
/// contiguous window around the query, so instead of expanding greedily one
/// element at a time the kernel evaluates **all** candidate windows
/// `[s, s + k]` containing `p` in a single straight-line min-of-max loop over
/// contiguous memory — branch-free and autovectorizable.
#[inline]
fn kth_1d_at(sorted: &[f64], p: usize, k: usize) -> f64 {
    let n = sorted.len();
    let v = sorted[p];
    let lo = p.saturating_sub(k);
    let hi = p.min(n - 1 - k);
    let mut best = f64::INFINITY;
    for s in lo..=hi {
        let d = (v - sorted[s]).max(sorted[s + k] - v);
        best = best.min(d);
    }
    best
}

/// 1-D k-th-NN distances for every sorted position (scatter back to original
/// index order is the caller's cheap O(n) pass).
pub(crate) fn kth_1d_by_position(sorted: &[f64], k: usize) -> Vec<f64> {
    let n = sorted.len();
    if n < PAR_CUTOFF {
        (0..n).map(|p| kth_1d_at(sorted, p, k)).collect()
    } else {
        joinmi_par::par_map_index(n, |p| kth_1d_at(sorted, p, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_prune_never_drops_a_winner() {
        // A block whose minimum beats the threshold must be offered fully:
        // craft a block where only the last element improves the heap.
        let mut heap = BoundedMaxHeap::new(1);
        KthAccumulator::offer(&mut heap, 1.0);
        let xs = [5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 0.1];
        let ys = [5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 0.1];
        offer_block(&xs, &ys, 0.0, 0.0, &mut heap);
        assert_eq!(heap.max(), 0.1);
    }

    #[test]
    fn block_dists_matches_scalar_formula_bitwise() {
        let xs = [1.0, -2.0, 0.5, 10.0, -0.25, 3.5, 7.0, -9.0];
        let ys = [0.0, 3.0, -0.5, -10.0, 2.5, -1.5, 4.0, 8.0];
        let (xi, yi) = (0.25, -0.75);
        let d = block_dists(&xs, &ys, xi, yi);
        for j in 0..BLOCK {
            let want = (xs[j] - xi).abs().max((ys[j] - yi).abs());
            assert_eq!(d[j].to_bits(), want.to_bits(), "lane {j}");
        }
        assert_eq!(
            block_min(&d),
            d.iter().copied().fold(f64::INFINITY, f64::min)
        );
    }

    #[test]
    fn small_k_and_heap_accumulators_agree_through_the_kernel() {
        let mut state = 0xacc_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        let n = 257;
        let mut xs: Vec<f64> = (0..n).map(|_| next()).collect();
        xs.sort_unstable_by(f64::total_cmp);
        let ys: Vec<f64> = (0..n).map(|_| next() * 2.0).collect();
        for k in 1..=SMALL_TOP_K_MAX {
            let mut small = SmallTopK::new(k);
            let mut heap = BoundedMaxHeap::new(k);
            for p in (0..n).step_by(13) {
                let a = chebyshev_kth_at(&xs, &ys, p, &mut small);
                let b = chebyshev_kth_at(&xs, &ys, p, &mut heap);
                assert_eq!(a.to_bits(), b.to_bits(), "k={k}, p={p}");
            }
        }
    }

    #[test]
    fn kth_1d_window_scan_handles_boundaries() {
        let sorted = [0.0, 1.0, 3.0, 7.0];
        // k = 1: nearest-neighbour gaps.
        assert_eq!(kth_1d_at(&sorted, 0, 1), 1.0);
        assert_eq!(kth_1d_at(&sorted, 3, 1), 4.0);
        // k = 3: the window is the whole array.
        assert_eq!(kth_1d_at(&sorted, 0, 3), 7.0);
        assert_eq!(kth_1d_at(&sorted, 2, 3), 4.0);
    }
}
