//! Fixed-width `f64` lane helpers for the blocked distance kernels.
//!
//! The build environment has no crate registry (no `wide`/`packed_simd`) and
//! the pinned toolchain is stable (no `std::simd`), so lane widening is done
//! the portable way: straight-line operations over `[f64; 4]` arrays with no
//! data-dependent branches. LLVM lowers these loops to SIMD on every target
//! with vector units (SSE2/AVX on x86-64, NEON on aarch64) and to plain
//! scalar code elsewhere — the semantics are identical either way, so no
//! `cfg(target_feature)` forks are needed to stay portable. If `std::simd`
//! stabilizes, this module is the one place to swap in explicit vectors.

/// Lane width of the helpers. Four doubles fill one AVX2 register (two SSE2 /
/// NEON registers) and keep the remainder handling in [`super::blocked`]
/// short.
pub(crate) const LANES: usize = 4;

/// One batch of values processed per helper call.
pub(crate) type F64Lanes = [f64; LANES];

/// Chebyshev distances of four candidate points to the query `(xi, yi)`:
/// `max(|x_j − xi|, |y_j − yi|)` per lane, with no branches.
#[inline]
pub(crate) fn chebyshev(xs: &F64Lanes, ys: &F64Lanes, xi: f64, yi: f64) -> F64Lanes {
    let mut out = [0.0f64; LANES];
    for j in 0..LANES {
        out[j] = (xs[j] - xi).abs().max((ys[j] - yi).abs());
    }
    out
}

/// Horizontal minimum of a lane batch (pairwise tree, short dependency
/// chain). Distances are never NaN — validation rejects non-finite
/// coordinates upstream — so `f64::min`'s NaN convention is irrelevant here.
#[inline]
pub(crate) fn min_lane(d: &F64Lanes) -> f64 {
    d[0].min(d[1]).min(d[2].min(d[3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_matches_scalar_formula() {
        let xs = [1.0, -2.0, 0.5, 10.0];
        let ys = [0.0, 3.0, -0.5, -10.0];
        let (xi, yi) = (0.25, -0.75);
        let d = chebyshev(&xs, &ys, xi, yi);
        for j in 0..LANES {
            let want = (xs[j] - xi).abs().max((ys[j] - yi).abs());
            assert_eq!(d[j].to_bits(), want.to_bits(), "lane {j}");
        }
    }

    #[test]
    fn min_lane_finds_the_smallest() {
        assert_eq!(min_lane(&[4.0, 2.0, 8.0, 3.0]), 2.0);
        assert_eq!(min_lane(&[1.0, 1.0, 1.0, 0.0]), 0.0);
        assert_eq!(min_lane(&[f64::INFINITY, 5.0, 9.0, 7.0]), 5.0);
    }
}
