//! The shared sort-once workspace for the KSG-family estimators.
//!
//! Before PR 4, one `ksg_mi` call sorted its input columns up to three times:
//! the joint k-NN search sorted an index order by x, and each
//! [`MarginalCounter`](crate::knn::MarginalCounter) re-sorted a fresh copy of
//! x and y. [`EstimatorWorkspace`] hoists all of that into two prepared
//! views — an x-sorted [`SortedJoint`](crate::knn) whose sorted-x copy
//! doubles as the x marginal, and a [`RankedMarginal`](crate::knn) for y —
//! so every column is sorted **exactly once per estimate**, every marginal
//! count starts from the point's already-known rank, and all buffers
//! (index orders, ranks, sorted copies, scratch) are **reused across
//! estimates** instead of reallocated.
//!
//! The `*_mi_with` estimator variants ([`crate::ksg::ksg_mi_with`],
//! [`crate::mixed_ksg::mixed_ksg_mi_with`],
//! [`crate::dc_ksg::dc_ksg_mi_with`]) take a `&mut EstimatorWorkspace`;
//! the classic free functions wrap them with a throwaway workspace. Batch
//! callers — candidate scoring in discovery, the evaluation grids — keep one
//! workspace per [`joinmi_par`] worker (`par_map_with`), so a query scoring
//! hundreds of candidates pays the allocation cost once per worker, not once
//! per candidate.
//!
//! A workspace carries no results, only layout: re-`prepare`-ing it for a new
//! sample fully overwrites the previous state, so reuse can never change an
//! estimate (pinned by tests here and in `tests/parallel_determinism.rs`).

use crate::knn::{RankedMarginal, SortedJoint};

/// Fixed chunk length for the estimators' parallel accumulation loops.
///
/// Chunk boundaries must depend only on this constant — never on the worker
/// count — so the fixed-order reduction of per-chunk partial sums is
/// bit-for-bit identical across thread counts (see
/// [`joinmi_par::par_map_ranges`]).
pub(crate) const ACC_CHUNK: usize = 1024;

/// Reusable sort-once state shared by the KSG-family estimators.
///
/// See the [module docs](self) for the full story. Construct once (cheap:
/// empty buffers), then pass to any number of `*_mi_with` calls.
#[derive(Debug, Clone, Default)]
pub struct EstimatorWorkspace {
    /// X-sorted joint view; its sorted-x copy doubles as the x marginal.
    pub(crate) joint: SortedJoint,
    /// Value-sorted y marginal with per-point ranks.
    pub(crate) y_marginal: RankedMarginal,
    /// Generic f64 scratch (DC-KSG group gather, perturbation sort buffer).
    pub(crate) scratch: Vec<f64>,
}

impl EstimatorWorkspace {
    /// Creates an empty workspace (no allocations until first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the joint view and the y marginal for a continuous pair.
    pub(crate) fn prepare_joint(&mut self, x: &[f64], y: &[f64]) {
        self.joint.prepare(x, y);
        self.y_marginal.prepare(y);
    }

    /// Prepares only the y marginal (DC-KSG has a discrete x side).
    pub(crate) fn prepare_y_marginal(&mut self, y: &[f64]) {
        self.y_marginal.prepare(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dc_ksg_mi, ksg_mi, mixed_ksg_mi};
    use crate::{dc_ksg_mi_with, ksg_mi_with, mixed_ksg_mi_with};

    fn lcg(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                ((state >> 33) as f64) / f64::from(u32::MAX)
            })
            .collect()
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace_bitwise() {
        // One workspace threaded through heterogeneous estimates (different
        // sizes, estimators, tie structures) must give the exact bits a fresh
        // workspace gives.
        let mut ws = EstimatorWorkspace::new();
        let samples: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (lcg(1, 500), lcg(2, 500)),
            (lcg(3, 64), lcg(4, 64)),
            (
                lcg(5, 300).iter().map(|v| (v * 5.0).floor()).collect(),
                lcg(6, 300),
            ),
        ];
        for (x, y) in &samples {
            let reused = ksg_mi_with(&mut ws, x, y, 3).unwrap();
            assert_eq!(reused.to_bits(), ksg_mi(x, y, 3).unwrap().to_bits());
            let reused = mixed_ksg_mi_with(&mut ws, x, y, 3).unwrap();
            assert_eq!(reused.to_bits(), mixed_ksg_mi(x, y, 3).unwrap().to_bits());
            let codes: Vec<u32> = x.iter().map(|v| (v.abs() as u32) % 4).collect();
            let reused = dc_ksg_mi_with(&mut ws, &codes, y, 3).unwrap();
            assert_eq!(reused.to_bits(), dc_ksg_mi(&codes, y, 3).unwrap().to_bits());
        }
    }
}
