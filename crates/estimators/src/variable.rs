//! Sample representations used by the estimators.
//!
//! Estimators operate on one of two representations of a column sample:
//! integer *codes* for discrete (categorical) variables or `f64` coordinates
//! for continuous / mixture variables. [`Variable`] packages a sample with
//! its representation and provides conversions from generic
//! [`Value`] slices.

use std::collections::HashMap;

use joinmi_table::{DataType, Value};

use crate::error::EstimatorError;
use crate::Result;

/// A sample of one variable in a representation an estimator can consume.
#[derive(Debug, Clone, PartialEq)]
pub enum Variable {
    /// Discrete (categorical) sample: values mapped to dense integer codes.
    Discrete(Vec<u32>),
    /// Continuous (or discrete-continuous mixture) sample.
    Continuous(Vec<f64>),
}

impl Variable {
    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Discrete(v) => v.len(),
            Self::Continuous(v) => v.len(),
        }
    }

    /// Returns `true` if the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if this is the discrete representation.
    #[must_use]
    pub fn is_discrete(&self) -> bool {
        matches!(self, Self::Discrete(_))
    }

    /// Number of distinct values in the sample.
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        match self {
            Self::Discrete(v) => {
                let mut sorted = v.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len()
            }
            Self::Continuous(v) => {
                let mut sorted: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len()
            }
        }
    }

    /// Returns the continuous coordinates, converting discrete codes to
    /// floats when necessary (ordered discrete data can legitimately be fed
    /// to KSG-type estimators; see Section V-A of the paper).
    #[must_use]
    pub fn as_continuous(&self) -> Vec<f64> {
        match self {
            Self::Discrete(v) => v.iter().map(|&c| f64::from(c)).collect(),
            Self::Continuous(v) => v.clone(),
        }
    }

    /// Builds a variable from values, choosing the representation from the
    /// column's data type: strings become discrete codes, numerics become
    /// continuous coordinates. NULLs must be filtered out by the caller
    /// (pairwise) before conversion; any NULL here is an error.
    pub fn from_values(values: &[Value], dtype: DataType) -> Result<Self> {
        match dtype {
            DataType::Str => Ok(Self::Discrete(discretize(values))),
            DataType::Int | DataType::Float => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    match v.as_f64() {
                        Some(x) => out.push(x),
                        None => {
                            return Err(EstimatorError::IncompatibleTypes {
                                estimator: "variable conversion".to_owned(),
                                detail: format!("non-numeric value `{v}` in a numeric column"),
                            })
                        }
                    }
                }
                Ok(Self::Continuous(out))
            }
        }
    }

    /// Forces a discrete representation regardless of the original type
    /// (numeric values are grouped by exact equality).
    #[must_use]
    pub fn forced_discrete(values: &[Value]) -> Self {
        Self::Discrete(discretize(values))
    }
}

/// Maps arbitrary values to dense integer codes (equal values share a code).
#[must_use]
pub fn discretize(values: &[Value]) -> Vec<u32> {
    let mut codes: HashMap<&Value, u32> = HashMap::new();
    let mut out = Vec::with_capacity(values.len());
    for v in values {
        let next = codes.len() as u32;
        let code = *codes.entry(v).or_insert(next);
        out.push(code);
    }
    out
}

/// Extracts the numeric coordinates of a value slice, failing on non-numeric
/// entries.
pub fn to_continuous(values: &[Value]) -> Result<Vec<f64>> {
    values
        .iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| EstimatorError::IncompatibleTypes {
                estimator: "continuous conversion".to_owned(),
                detail: format!("value `{v}` is not numeric"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretize_assigns_dense_codes() {
        let vals = vec![
            Value::from("a"),
            Value::from("b"),
            Value::from("a"),
            Value::from("c"),
        ];
        assert_eq!(discretize(&vals), vec![0, 1, 0, 2]);
    }

    #[test]
    fn from_values_string_column() {
        let vals = vec![Value::from("x"), Value::from("y"), Value::from("x")];
        let v = Variable::from_values(&vals, DataType::Str).unwrap();
        assert!(v.is_discrete());
        assert_eq!(v.len(), 3);
        assert_eq!(v.distinct_count(), 2);
    }

    #[test]
    fn from_values_numeric_column() {
        let vals = vec![Value::Int(1), Value::Float(2.5)];
        let v = Variable::from_values(&vals, DataType::Float).unwrap();
        assert_eq!(v, Variable::Continuous(vec![1.0, 2.5]));
        assert!(!v.is_discrete());
    }

    #[test]
    fn from_values_rejects_nulls_in_numeric() {
        let vals = vec![Value::Int(1), Value::Null];
        assert!(Variable::from_values(&vals, DataType::Int).is_err());
    }

    #[test]
    fn forced_discrete_groups_numerics() {
        let vals = vec![Value::Float(1.5), Value::Float(1.5), Value::Float(2.0)];
        let v = Variable::forced_discrete(&vals);
        assert_eq!(v, Variable::Discrete(vec![0, 0, 1]));
    }

    #[test]
    fn as_continuous_widens_codes() {
        let v = Variable::Discrete(vec![0, 2, 1]);
        assert_eq!(v.as_continuous(), vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn to_continuous_errors_on_strings() {
        assert!(to_continuous(&[Value::from("a")]).is_err());
        assert_eq!(to_continuous(&[Value::Int(2)]).unwrap(), vec![2.0]);
    }
}
