//! Plug-in (maximum likelihood) mutual information for discrete–discrete
//! variable pairs, plus the Laplace-smoothed variant mentioned in the paper's
//! conclusion and the first-order bias formula (Eq. 6).

use std::collections::HashMap;

use joinmi_hash::FixedHashMap;

use crate::error::EstimatorError;
use crate::Result;

/// Plug-in MLE estimate of `I(X; Y)` for two discrete samples given as
/// integer codes.
///
/// `Î = Σ_{x,y} p̂(x,y) ln [ p̂(x,y) / (p̂(x) p̂(y)) ]`, in nats.
///
/// The estimate is clamped at 0 (the true MI is non-negative, and tiny
/// negative values can appear from floating-point cancellation).
pub fn mle_mi(x: &[u32], y: &[u32]) -> Result<f64> {
    check_lengths(x, y)?;
    let n = x.len() as f64;

    // Deterministic hasher: the MI sum below runs in map iteration order, so
    // a randomly seeded map would make the estimate differ in the last float
    // bits from run to run (and between parallel and sequential replays).
    let mut joint: FixedHashMap<(u32, u32), f64> = FixedHashMap::default();
    let mut px: FixedHashMap<u32, f64> = FixedHashMap::default();
    let mut py: FixedHashMap<u32, f64> = FixedHashMap::default();
    for (&a, &b) in x.iter().zip(y) {
        *joint.entry((a, b)).or_default() += 1.0;
        *px.entry(a).or_default() += 1.0;
        *py.entry(b).or_default() += 1.0;
    }

    let mut mi = 0.0;
    for (&(a, b), &nab) in &joint {
        let pab = nab / n;
        let pa = px[&a] / n;
        let pb = py[&b] / n;
        mi += pab * (pab / (pa * pb)).ln();
    }
    Ok(mi.max(0.0))
}

/// Laplace-smoothed MI: every cell of the joint contingency table over the
/// *observed* supports gets a pseudo-count `alpha` before the plug-in formula
/// is applied. Smoothing shrinks the estimate toward independence, trading
/// the MLE's high recall for fewer false discoveries (see the paper's
/// conclusion and Pennerath et al. 2020).
pub fn smoothed_mle_mi(x: &[u32], y: &[u32], alpha: f64) -> Result<f64> {
    check_lengths(x, y)?;
    if alpha < 0.0 {
        return Err(EstimatorError::InvalidParameter(format!(
            "smoothing pseudo-count must be non-negative, got {alpha}"
        )));
    }
    if alpha == 0.0 {
        return mle_mi(x, y);
    }
    let n = x.len() as f64;

    let mut xs = x.to_vec();
    xs.sort_unstable();
    xs.dedup();
    let mut ys = y.to_vec();
    ys.sort_unstable();
    ys.dedup();

    let mut joint: HashMap<(u32, u32), f64> = HashMap::new();
    for (&a, &b) in x.iter().zip(y) {
        *joint.entry((a, b)).or_default() += 1.0;
    }

    let total = n + alpha * (xs.len() as f64) * (ys.len() as f64);
    // Smoothed marginals are the row/column sums of the smoothed joint.
    let mut mi = 0.0;
    for &a in &xs {
        for &b in &ys {
            let nab = joint.get(&(a, b)).copied().unwrap_or(0.0) + alpha;
            let pab = nab / total;
            let na: f64 = ys
                .iter()
                .map(|&bb| joint.get(&(a, bb)).copied().unwrap_or(0.0) + alpha)
                .sum();
            let nb: f64 = xs
                .iter()
                .map(|&aa| joint.get(&(aa, b)).copied().unwrap_or(0.0) + alpha)
                .sum();
            let pa = na / total;
            let pb = nb / total;
            if pab > 0.0 {
                mi += pab * (pab / (pa * pb)).ln();
            }
        }
    }
    Ok(mi.max(0.0))
}

/// First-order bias of the MLE MI estimator (Eq. 6 of the paper, Roulston
/// 1999): `E[Î] − I ≈ (m_X + m_Y − m_XY − 1) / (2N)` where `m_X`, `m_Y`,
/// `m_XY` are the numbers of distinct values / pairs and `N` the sample size.
///
/// (The paper writes the left-hand side as `I − E[Î]`; with the sign used
/// here a *positive* value means the estimator over-estimates, which is the
/// direction observed in the experiments.)
#[must_use]
pub fn mle_mi_bias(m_x: usize, m_y: usize, m_xy: usize, n: usize) -> f64 {
    (m_x as f64 + m_y as f64 - m_xy as f64 - 1.0) / (2.0 * n as f64)
}

fn check_lengths(x: &[u32], y: &[u32]) -> Result<()> {
    if x.len() != y.len() {
        return Err(EstimatorError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if x.is_empty() {
        return Err(EstimatorError::InsufficientSamples {
            available: 0,
            required: 1,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_variables_have_mi_equal_to_entropy() {
        let x = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let mi = mle_mi(&x, &x).unwrap();
        assert!((mi - 4.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn independent_variables_have_zero_mi() {
        // X and Y each uniform over {0,1}, all 4 combinations equally often.
        let x = vec![0, 0, 1, 1];
        let y = vec![0, 1, 0, 1];
        assert!(mle_mi(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn bijection_invariance() {
        let x = vec![0, 1, 2, 0, 1, 2, 2, 2];
        let y = vec![5, 5, 7, 5, 6, 7, 7, 6];
        let relabeled: Vec<u32> = x.iter().map(|&v| 10 - v).collect();
        assert!((mle_mi(&x, &y).unwrap() - mle_mi(&relabeled, &y).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let x = vec![0, 1, 1, 2, 2, 2, 0, 1];
        let y = vec![1, 1, 0, 2, 2, 0, 0, 1];
        assert!((mle_mi(&x, &y).unwrap() - mle_mi(&y, &x).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(mle_mi(&[0, 1], &[0]).is_err());
        assert!(mle_mi(&[], &[]).is_err());
        assert!(smoothed_mle_mi(&[0], &[0], -1.0).is_err());
    }

    #[test]
    fn smoothing_shrinks_toward_zero() {
        let x = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let plain = mle_mi(&x, &x).unwrap();
        let smooth = smoothed_mle_mi(&x, &x, 1.0).unwrap();
        assert!(smooth < plain);
        assert!(smooth > 0.0);
        // alpha = 0 reproduces the plain estimator.
        assert!((smoothed_mle_mi(&x, &x, 0.0).unwrap() - plain).abs() < 1e-12);
    }

    #[test]
    fn smoothing_of_independent_data_stays_near_zero() {
        let x = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(smoothed_mle_mi(&x, &y, 0.5).unwrap() < 1e-9);
    }

    #[test]
    fn bias_formula_matches_eq6() {
        // m_X = m_Y = 4, m_XY = 16, N = 100: (4 + 4 - 16 - 1) / 200 < 0.
        assert!((mle_mi_bias(4, 4, 16, 100) - (-9.0 / 200.0)).abs() < 1e-12);
        // Perfectly dependent: m_XY = m_X = m_Y = m → (m - 1) / 2N > 0.
        assert!((mle_mi_bias(8, 8, 8, 64) - (7.0 / 128.0)).abs() < 1e-12);
    }

    #[test]
    fn bias_shows_up_empirically_for_independent_uniforms() {
        // With m distinct values each and independent X, Y the true MI is 0
        // but the MLE gives roughly (m−1)² / (2N) > 0.
        let m = 8u32;
        let n = 512usize;
        // Deterministic "random" assignment via an LCG.
        let mut state = 42u64;
        let mut next = |modulus: u32| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) % u64::from(modulus)) as u32
        };
        let x: Vec<u32> = (0..n).map(|_| next(m)).collect();
        let y: Vec<u32> = (0..n).map(|_| next(m)).collect();
        let mi = mle_mi(&x, &y).unwrap();
        let predicted = mle_mi_bias(m as usize, m as usize, (m * m) as usize, n).abs();
        // The empirical overestimate should be positive and of the same order
        // as the |bias| prediction (not exact — Eq. 6 is first-order).
        assert!(mi > 0.0);
        assert!(
            mi < 6.0 * predicted + 0.05,
            "mi = {mi}, predicted bias = {predicted}"
        );
    }
}
