//! Correlation measures.
//!
//! Pearson's correlation is what the Correlation-Sketches baseline (CSK)
//! estimates instead of MI; Spearman's rank correlation is the metric the
//! paper uses to compare sketch-based rankings against full-join rankings
//! (Table II).

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` if the inputs are shorter than 2 or either has zero
/// variance.
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mean_x;
        let dy = b - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Spearman's rank correlation (Pearson correlation of the ranks, with
/// average ranks for ties).
#[must_use]
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Assigns average ranks (1-based) to a sample, ties receiving the mean of
/// the ranks they span.
#[must_use]
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Average of ranks i+1 ..= j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn spearman_is_invariant_to_monotone_transforms() {
        let x: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson of the same data is below 1 (nonlinear), Spearman is exactly 1.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties_with_average_ranks() {
        let x = vec![1.0, 2.0, 2.0, 3.0];
        let ranks = average_ranks(&x);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
        let y = vec![10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_data_near_zero() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 0.25);
        assert!(spearman(&x, &y).unwrap().abs() < 0.25);
    }
}
