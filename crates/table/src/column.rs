//! Typed columns.
//!
//! Columns are stored in a simple columnar layout: one vector of optional
//! values per physical type. This keeps scans cache-friendly and makes the
//! full-join / full-estimation baselines (the expensive paths the sketches
//! avoid) reasonably fast without external dependencies.

use std::collections::HashMap;

use crate::error::TableError;
use crate::value::{DataType, Value};
use crate::Result;

/// A typed column with optional (nullable) entries.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
}

impl Column {
    /// Creates an empty column of the given type.
    #[must_use]
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Self::Int(Vec::new()),
            DataType::Float => Self::Float(Vec::new()),
            DataType::Str => Self::Str(Vec::new()),
        }
    }

    /// Creates an integer column from plain values.
    #[must_use]
    pub fn from_ints<I: IntoIterator<Item = i64>>(values: I) -> Self {
        Self::Int(values.into_iter().map(Some).collect())
    }

    /// Creates a float column from plain values.
    #[must_use]
    pub fn from_floats<I: IntoIterator<Item = f64>>(values: I) -> Self {
        Self::Float(values.into_iter().map(Some).collect())
    }

    /// Creates a string column from plain values.
    pub fn from_strs<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::Str(values.into_iter().map(|s| Some(s.into())).collect())
    }

    /// Builds a column of the given type from generic [`Value`]s.
    ///
    /// Values must be NULL or of the matching type; `Int` values are widened
    /// to floats when the target type is `Float`.
    pub fn from_values(dtype: DataType, values: &[Value]) -> Result<Self> {
        let mut builder = ColumnBuilder::new(dtype);
        for v in values {
            builder.push_value(v.clone())?;
        }
        Ok(builder.finish())
    }

    /// Number of entries (including NULLs).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Int(v) => v.len(),
            Self::Float(v) => v.len(),
            Self::Str(v) => v.len(),
        }
    }

    /// Returns `true` if the column has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical data type of the column.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        match self {
            Self::Int(_) => DataType::Int,
            Self::Float(_) => DataType::Float,
            Self::Str(_) => DataType::Str,
        }
    }

    /// Returns the value at `index` (NULL if the slot is empty).
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn value(&self, index: usize) -> Value {
        match self {
            Self::Int(v) => v[index].map_or(Value::Null, Value::Int),
            Self::Float(v) => v[index].map_or(Value::Null, Value::Float),
            Self::Str(v) => v[index].clone().map_or(Value::Null, Value::Str),
        }
    }

    /// Returns the value at `index`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Value> {
        (index < self.len()).then(|| self.value(index))
    }

    /// Iterates over all values (NULLs included).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Number of NULL entries.
    #[must_use]
    pub fn null_count(&self) -> usize {
        match self {
            Self::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Self::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Self::Str(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Number of distinct non-NULL values.
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        let mut seen: HashMap<Value, ()> = HashMap::new();
        for v in self.iter() {
            if !v.is_null() {
                seen.insert(v, ());
            }
        }
        seen.len()
    }

    /// Returns all non-NULL values as floats, if the column is numeric.
    #[must_use]
    pub fn numeric_values(&self) -> Option<Vec<f64>> {
        match self {
            Self::Int(v) => Some(v.iter().flatten().map(|&x| x as f64).collect()),
            Self::Float(v) => Some(v.iter().flatten().copied().collect()),
            Self::Str(_) => None,
        }
    }

    /// Gathers the entries at `indices` into a new column, preserving type.
    ///
    /// `None` entries in `indices` produce NULLs (used for the unmatched rows
    /// of a left-outer join).
    #[must_use]
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Self {
        match self {
            Self::Int(v) => Self::Int(indices.iter().map(|i| i.and_then(|i| v[i])).collect()),
            Self::Float(v) => Self::Float(indices.iter().map(|i| i.and_then(|i| v[i])).collect()),
            Self::Str(v) => Self::Str(
                indices
                    .iter()
                    .map(|i| i.and_then(|i| v[i].clone()))
                    .collect(),
            ),
        }
    }

    /// Gathers the entries at `indices` into a new column.
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> Self {
        match self {
            Self::Int(v) => Self::Int(indices.iter().map(|&i| v[i]).collect()),
            Self::Float(v) => Self::Float(indices.iter().map(|&i| v[i]).collect()),
            Self::Str(v) => Self::Str(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Appends another column's entries in place (amortized `O(other)`, no
    /// re-allocation of the existing entries).
    ///
    /// # Panics
    /// Panics if the columns have different types; [`crate::Table::vstack`]
    /// and [`crate::Table::extend_rows`] check schemas before calling this.
    pub fn extend_from(&mut self, other: &Self) {
        match (self, other) {
            (Self::Int(a), Self::Int(b)) => a.extend_from_slice(b),
            (Self::Float(a), Self::Float(b)) => a.extend_from_slice(b),
            (Self::Str(a), Self::Str(b)) => a.extend(b.iter().cloned()),
            (a, b) => panic!(
                "cannot concat {} column with {} column",
                a.dtype(),
                b.dtype()
            ),
        }
    }
}

/// Incremental builder for a [`Column`].
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    column: Column,
}

impl ColumnBuilder {
    /// Creates a builder for a column of the given type.
    #[must_use]
    pub fn new(dtype: DataType) -> Self {
        Self {
            column: Column::empty(dtype),
        }
    }

    /// Appends a NULL entry.
    pub fn push_null(&mut self) {
        match &mut self.column {
            Column::Int(v) => v.push(None),
            Column::Float(v) => v.push(None),
            Column::Str(v) => v.push(None),
        }
    }

    /// Appends a [`Value`]. Integers are widened to float when the column is a
    /// float column; any other type mismatch is an error.
    pub fn push_value(&mut self, value: Value) -> Result<()> {
        match (&mut self.column, value) {
            (_, Value::Null) => {
                self.push_null();
                Ok(())
            }
            (Column::Int(v), Value::Int(x)) => {
                v.push(Some(x));
                Ok(())
            }
            (Column::Float(v), Value::Float(x)) => {
                v.push(Some(x));
                Ok(())
            }
            (Column::Float(v), Value::Int(x)) => {
                v.push(Some(x as f64));
                Ok(())
            }
            (Column::Str(v), Value::Str(x)) => {
                v.push(Some(x));
                Ok(())
            }
            (col, value) => Err(TableError::ParseError {
                raw: value.to_string(),
                dtype: col.dtype().name().to_owned(),
            }),
        }
    }

    /// Number of entries pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// Returns `true` if nothing has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// Finishes the builder and returns the column.
    #[must_use]
    pub fn finish(self) -> Column {
        self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        let c = Column::from_ints([1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dtype(), DataType::Int);
        assert!(!c.is_empty());
        assert!(Column::empty(DataType::Str).is_empty());
    }

    #[test]
    fn value_access_and_iteration() {
        let c = Column::from_strs(["a", "b"]);
        assert_eq!(c.value(0), Value::from("a"));
        assert_eq!(c.get(1), Some(Value::from("b")));
        assert_eq!(c.get(2), None);
        let all: Vec<Value> = c.iter().collect();
        assert_eq!(all, vec![Value::from("a"), Value::from("b")]);
    }

    #[test]
    fn null_and_distinct_counts() {
        let c = Column::Int(vec![Some(1), None, Some(1), Some(2)]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn numeric_values_skips_nulls() {
        let c = Column::Float(vec![Some(1.5), None, Some(2.5)]);
        assert_eq!(c.numeric_values(), Some(vec![1.5, 2.5]));
        assert_eq!(Column::from_strs(["x"]).numeric_values(), None);
    }

    #[test]
    fn take_and_take_opt() {
        let c = Column::from_ints([10, 20, 30]);
        assert_eq!(c.take(&[2, 0]), Column::from_ints([30, 10]));
        assert_eq!(
            c.take_opt(&[Some(1), None]),
            Column::Int(vec![Some(20), None])
        );
    }

    #[test]
    fn builder_widens_ints_to_floats() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push_value(Value::Int(2)).unwrap();
        b.push_value(Value::Float(0.5)).unwrap();
        b.push_null();
        let c = b.finish();
        assert_eq!(c, Column::Float(vec![Some(2.0), Some(0.5), None]));
    }

    #[test]
    fn builder_rejects_type_mismatch() {
        let mut b = ColumnBuilder::new(DataType::Int);
        assert!(b.push_value(Value::from("oops")).is_err());
    }

    #[test]
    fn from_values_round_trip() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let c = Column::from_values(DataType::Int, &vals).unwrap();
        let back: Vec<Value> = c.iter().collect();
        assert_eq!(back, vals);
    }
}
