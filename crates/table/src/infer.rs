//! Column type inference and value parsing.
//!
//! The paper's real-data pipeline relies on a type-inference library
//! (Tablesaw) to decide whether a column is a string (discrete) or a number
//! (continuous) before choosing an MI estimator. This module plays that role:
//! given the raw textual values of a column, it infers the narrowest type
//! that can represent all non-empty values (`Int` ⊂ `Float` ⊂ `Str`).

use crate::value::{DataType, Value};

/// Parses a single raw cell into a [`Value`] of the given type.
///
/// Empty strings (after trimming) parse as NULL for every type.
#[must_use]
pub fn parse_value(raw: &str, dtype: DataType) -> Option<Value> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Some(Value::Null);
    }
    match dtype {
        DataType::Int => trimmed.parse::<i64>().ok().map(Value::Int),
        DataType::Float => parse_float(trimmed).map(Value::Float),
        DataType::Str => Some(Value::Str(trimmed.to_owned())),
    }
}

fn parse_float(s: &str) -> Option<f64> {
    // Reject values like "nan"/"inf" coming from text: they are almost always
    // sentinels, and treating them as numbers would poison MI estimation.
    let v = s.parse::<f64>().ok()?;
    v.is_finite().then_some(v)
}

/// Infers the narrowest data type that can represent every non-empty cell.
///
/// * all cells parse as `i64` → [`DataType::Int`]
/// * all cells parse as finite `f64` → [`DataType::Float`]
/// * otherwise → [`DataType::Str`]
///
/// A column whose cells are all empty infers as `Str` (there is no evidence
/// for a numeric interpretation).
#[must_use]
pub fn infer_column_type<'a, I>(cells: I) -> DataType
where
    I: IntoIterator<Item = &'a str>,
{
    let mut all_int = true;
    let mut all_float = true;
    let mut saw_non_empty = false;

    for raw in cells {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        saw_non_empty = true;
        if all_int && trimmed.parse::<i64>().is_err() {
            all_int = false;
        }
        if all_float && parse_float(trimmed).is_none() {
            all_float = false;
        }
        if !all_int && !all_float {
            return DataType::Str;
        }
    }

    if !saw_non_empty {
        DataType::Str
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else {
        DataType::Str
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_int() {
        assert_eq!(infer_column_type(["1", "2", "-3", ""]), DataType::Int);
    }

    #[test]
    fn infers_float_when_any_cell_has_decimals() {
        assert_eq!(infer_column_type(["1", "2.5", "-3"]), DataType::Float);
        assert_eq!(infer_column_type(["1e3", "2.5"]), DataType::Float);
    }

    #[test]
    fn infers_str_on_mixed_content() {
        assert_eq!(infer_column_type(["1", "abc"]), DataType::Str);
        assert_eq!(infer_column_type(["Brooklyn", "Queens"]), DataType::Str);
        // Sentinels like NaN/inf force string typing.
        assert_eq!(infer_column_type(["1.0", "inf"]), DataType::Str);
    }

    #[test]
    fn empty_column_is_str() {
        assert_eq!(infer_column_type(["", "  "]), DataType::Str);
        assert_eq!(infer_column_type(std::iter::empty::<&str>()), DataType::Str);
    }

    #[test]
    fn parse_value_by_type() {
        assert_eq!(parse_value("42", DataType::Int), Some(Value::Int(42)));
        assert_eq!(parse_value("4.5", DataType::Float), Some(Value::Float(4.5)));
        assert_eq!(parse_value("x", DataType::Str), Some(Value::from("x")));
        assert_eq!(parse_value(" ", DataType::Int), Some(Value::Null));
        assert_eq!(parse_value("abc", DataType::Int), None);
        assert_eq!(parse_value("nan", DataType::Float), None);
    }

    #[test]
    fn integral_strings_can_still_be_treated_as_categories() {
        // The paper notes UPC-code-like columns should be strings; inference
        // alone cannot know that, but parse_value allows forcing Str.
        assert_eq!(
            parse_value("00123", DataType::Str),
            Some(Value::from("00123"))
        );
    }
}
