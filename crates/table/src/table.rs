//! Tables: named collections of equal-length columns.

use std::fmt;

use crate::column::{Column, ColumnBuilder};
use crate::error::TableError;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use crate::Result;

/// An in-memory table: a schema plus equal-length columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Starts building a table with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> TableBuilder {
        TableBuilder::new(name)
    }

    /// Creates a table directly from columns.
    pub fn from_columns(name: impl Into<String>, columns: Vec<(String, Column)>) -> Result<Self> {
        let mut builder = TableBuilder::new(name);
        for (col_name, col) in columns {
            builder = builder.push_column(col_name, col);
        }
        builder.build()
    }

    /// Table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` if the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Returns the column with the given name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.schema
            .index_of(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| TableError::ColumnNotFound {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    /// Returns the column at the given index.
    #[must_use]
    pub fn column_at(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// All columns in schema order.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Returns the value at (`row`, `column_name`).
    pub fn value(&self, row: usize, column_name: &str) -> Result<Value> {
        Ok(self.column(column_name)?.value(row))
    }

    /// Returns an entire row as values in schema order.
    #[must_use]
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Creates a new table with only the named columns (in the given order).
    pub fn select(&self, names: &[&str]) -> Result<Self> {
        let mut builder = TableBuilder::new(self.name.clone());
        for &name in names {
            let col = self.column(name)?;
            builder = builder.push_column(name, col.clone());
        }
        builder.build()
    }

    /// Creates a new table with the rows at `indices` (rows may repeat).
    #[must_use]
    pub fn take(&self, indices: &[usize]) -> Self {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Self {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            nrows: indices.len(),
        }
    }

    /// Creates a new table keeping the first `n` rows.
    #[must_use]
    pub fn head(&self, n: usize) -> Self {
        let indices: Vec<usize> = (0..n.min(self.nrows)).collect();
        self.take(&indices)
    }

    /// Creates a new table with the contiguous row range (clamped to the
    /// table length). Used to split tables into an initial-ingest prefix and
    /// append chunks.
    #[must_use]
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Self {
        let start = range.start.min(self.nrows);
        let end = range.end.min(self.nrows).max(start);
        let indices: Vec<usize> = (start..end).collect();
        self.take(&indices)
    }

    /// Vertically concatenates another table's rows below this one's. The
    /// other table must have the same schema (column names, order, and
    /// types); its table name is ignored.
    pub fn vstack(&self, other: &Table) -> Result<Self> {
        let mut combined = self.clone();
        combined.extend_rows(other)?;
        Ok(combined)
    }

    /// Appends another table's rows in place (same schema contract as
    /// [`Self::vstack`], amortized `O(other)` — the existing rows are not
    /// copied). The repository's incremental-ingest path uses this to keep
    /// raw tables in sync with appended chunks.
    pub fn extend_rows(&mut self, other: &Table) -> Result<()> {
        if self.schema != *other.schema() {
            return Err(TableError::Unsupported(format!(
                "vstack schema mismatch: `{}` has [{}], `{}` has [{}]",
                self.name,
                self.schema,
                other.name(),
                other.schema()
            )));
        }
        for (a, b) in self.columns.iter_mut().zip(other.columns()) {
            a.extend_from(b);
        }
        self.nrows += other.num_rows();
        Ok(())
    }

    /// Renames the table.
    #[must_use]
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Appends a column to the table (must have matching length).
    pub fn with_column(mut self, name: impl Into<String>, column: Column) -> Result<Self> {
        let name = name.into();
        if self.schema.contains(&name) {
            return Err(TableError::DuplicateColumn(name));
        }
        if column.len() != self.nrows {
            return Err(TableError::LengthMismatch {
                context: format!("column `{name}` of table `{}`", self.name),
                expected: self.nrows,
                actual: column.len(),
            });
        }
        self.schema.push(Field::new(name, column.dtype()));
        self.columns.push(column);
        Ok(self)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {} ({} rows)", self.name, self.schema, self.nrows)?;
        let preview = self.nrows.min(10);
        for row in 0..preview {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value(row).to_string())
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.nrows > preview {
            writeln!(f, "  … {} more rows", self.nrows - preview)?;
        }
        Ok(())
    }
}

/// Builder for [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Creates a builder for a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            schema: Schema::default(),
            columns: Vec::new(),
        }
    }

    /// Adds an already-built column.
    #[must_use]
    pub fn push_column(mut self, name: impl Into<String>, column: Column) -> Self {
        self.schema.push(Field::new(name, column.dtype()));
        self.columns.push(column);
        self
    }

    /// Adds an integer column from plain values.
    #[must_use]
    pub fn push_int_column<I: IntoIterator<Item = i64>>(self, name: &str, values: I) -> Self {
        self.push_column(name, Column::from_ints(values))
    }

    /// Adds a float column from plain values.
    #[must_use]
    pub fn push_float_column<I: IntoIterator<Item = f64>>(self, name: &str, values: I) -> Self {
        self.push_column(name, Column::from_floats(values))
    }

    /// Adds a string column from plain values.
    #[must_use]
    pub fn push_str_column<I, S>(self, name: &str, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push_column(name, Column::from_strs(values))
    }

    /// Adds a column of generic values with an explicit type.
    pub fn push_value_column(
        mut self,
        name: &str,
        dtype: DataType,
        values: &[Value],
    ) -> Result<Self> {
        let mut b = ColumnBuilder::new(dtype);
        for v in values {
            b.push_value(v.clone())?;
        }
        self.schema.push(Field::new(name, dtype));
        self.columns.push(b.finish());
        Ok(self)
    }

    /// Finishes the table, validating name uniqueness and column lengths.
    pub fn build(self) -> Result<Table> {
        // Duplicate column names.
        for (i, field) in self.schema.fields().iter().enumerate() {
            if self.schema.fields()[..i]
                .iter()
                .any(|f| f.name == field.name)
            {
                return Err(TableError::DuplicateColumn(field.name.clone()));
            }
        }
        // Consistent lengths.
        let nrows = self.columns.first().map_or(0, Column::len);
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            if col.len() != nrows {
                return Err(TableError::LengthMismatch {
                    context: format!("column `{}` of table `{}`", field.name, self.name),
                    expected: nrows,
                    actual: col.len(),
                });
            }
        }
        Ok(Table {
            name: self.name,
            schema: self.schema,
            columns: self.columns,
            nrows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taxi() -> Table {
        Table::builder("taxi")
            .push_str_column("zip", vec!["11201", "10011", "11201"])
            .push_int_column("trips", vec![136, 112, 140])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_access() {
        let t = taxi();
        assert_eq!(t.name(), "taxi");
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.value(0, "zip").unwrap(), Value::from("11201"));
        assert_eq!(t.value(2, "trips").unwrap(), Value::Int(140));
        assert_eq!(t.row(1), vec![Value::from("10011"), Value::Int(112)]);
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Table::builder("t")
            .push_int_column("a", vec![1])
            .push_int_column("a", vec![2])
            .build()
            .unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn("a".into()));
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = Table::builder("t")
            .push_int_column("a", vec![1, 2])
            .push_int_column("b", vec![1])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn select_take_head() {
        let t = taxi();
        let s = t.select(&["trips"]).unwrap();
        assert_eq!(s.num_columns(), 1);
        assert_eq!(s.num_rows(), 3);

        let taken = t.take(&[2, 2, 0]);
        assert_eq!(taken.num_rows(), 3);
        assert_eq!(taken.value(0, "trips").unwrap(), Value::Int(140));
        assert_eq!(taken.value(2, "zip").unwrap(), Value::from("11201"));

        assert_eq!(t.head(2).num_rows(), 2);
        assert_eq!(t.head(100).num_rows(), 3);
    }

    #[test]
    fn with_column_checks_length_and_duplicates() {
        let t = taxi();
        let ok = t
            .clone()
            .with_column("extra", Column::from_ints([1, 2, 3]))
            .unwrap();
        assert_eq!(ok.num_columns(), 3);

        assert!(t
            .clone()
            .with_column("zip", Column::from_ints([1, 2, 3]))
            .is_err());
        assert!(t.with_column("extra", Column::from_ints([1])).is_err());
    }

    #[test]
    fn display_does_not_panic() {
        let t = taxi();
        let s = format!("{t}");
        assert!(s.contains("taxi"));
    }

    #[test]
    fn empty_table() {
        let t = Table::builder("empty").build().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn push_value_column_with_nulls() {
        let t = Table::builder("t")
            .push_value_column(
                "v",
                DataType::Float,
                &[Value::Int(1), Value::Null, Value::Float(0.5)],
            )
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.column("v").unwrap().null_count(), 1);
        assert_eq!(t.value(0, "v").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn slice_then_vstack_reassembles_the_table() {
        let t = Table::builder("t")
            .push_str_column("k", vec!["a", "b", "c", "d", "e"])
            .push_int_column("v", vec![1, 2, 3, 4, 5])
            .build()
            .unwrap();
        let head = t.slice_rows(0..3);
        let tail = t.slice_rows(3..5);
        assert_eq!(head.num_rows(), 3);
        assert_eq!(tail.num_rows(), 2);
        let whole = head.vstack(&tail).unwrap();
        assert_eq!(whole, t);
        // Out-of-range slices clamp instead of panicking.
        assert_eq!(t.slice_rows(4..99).num_rows(), 1);
        assert_eq!(t.slice_rows(9..12).num_rows(), 0);
    }

    #[test]
    fn vstack_rejects_schema_mismatch() {
        let a = Table::builder("a")
            .push_int_column("v", vec![1])
            .build()
            .unwrap();
        let b = Table::builder("b")
            .push_float_column("v", vec![1.0])
            .build()
            .unwrap();
        assert!(matches!(a.vstack(&b), Err(TableError::Unsupported(_))));
    }
}
