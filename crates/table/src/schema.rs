//! Table schemas.

use std::fmt;

use crate::value::DataType;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.dtype)
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Returns the fields in order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if the schema has no fields.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with the given name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field with the given name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Returns `true` if a field with `name` exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Appends a field (no duplicate check — the table builder enforces it).
    pub fn push(&mut self, field: Field) {
        self.fields.push(field);
    }

    /// Column names in order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            Field::new("zip", DataType::Str),
            Field::new("trips", DataType::Int),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("trips"), Some(1));
        assert_eq!(s.field("zip").map(|f| f.dtype), Some(DataType::Str));
        assert!(s.contains("zip"));
        assert!(!s.contains("nope"));
        assert_eq!(s.names(), vec!["zip", "trips"]);
    }

    #[test]
    fn display_formats() {
        let s = Schema::new(vec![Field::new("a", DataType::Int)]);
        assert_eq!(s.to_string(), "[a: int]");
    }
}
