//! Hash equi-joins.
//!
//! The augmentation query of Section III keeps the base table's row count
//! intact with a *left-outer* join against an aggregated (unique-key)
//! augmentation table. We implement that join plus a plain inner join; both
//! are classic build/probe hash joins keyed on [`Value`]s.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// The result of a join: the combined table plus bookkeeping about how many
/// left rows found a match (useful for joinability statistics).
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// The joined table. Column names from the right table are prefixed with
    /// the right table's name when they would collide with a left column.
    pub table: Table,
    /// Number of left rows that found at least one match.
    pub matched_rows: usize,
    /// Number of left rows in total.
    pub left_rows: usize,
}

impl JoinResult {
    /// Fraction of left rows that found a match (containment of the left key
    /// column in the right key column).
    #[must_use]
    pub fn containment(&self) -> f64 {
        if self.left_rows == 0 {
            0.0
        } else {
            self.matched_rows as f64 / self.left_rows as f64
        }
    }
}

/// Performs `left LEFT OUTER JOIN right ON left[left_key] = right[right_key]`.
///
/// The right side must have unique (or at least deduplicated) join keys —
/// this is the many-to-one requirement of the augmentation setting. If a key
/// appears more than once on the right, an error is returned; callers that
/// start from a raw candidate table should aggregate it first with
/// [`crate::aggregate::group_by_aggregate`].
///
/// Rows of `left` whose key is NULL or unmatched get NULLs in the right-hand
/// columns. Row order of `left` is preserved and the output has exactly
/// `left.num_rows()` rows.
pub fn left_outer_join(
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
) -> Result<JoinResult> {
    let probe_index = build_unique_index(right, right_key)?;
    let left_key_col = left.column(left_key)?;

    let mut right_row_for_left: Vec<Option<usize>> = Vec::with_capacity(left.num_rows());
    let mut matched = 0usize;
    for i in 0..left.num_rows() {
        let k = left_key_col.value(i);
        let hit = if k.is_null() {
            None
        } else {
            probe_index.get(&k).copied()
        };
        if hit.is_some() {
            matched += 1;
        }
        right_row_for_left.push(hit);
    }

    let table = assemble(left, right, right_key, |col: &Column| {
        col.take_opt(&right_row_for_left)
    })?;
    Ok(JoinResult {
        table,
        matched_rows: matched,
        left_rows: left.num_rows(),
    })
}

/// Performs `left INNER JOIN right ON left[left_key] = right[right_key]` with
/// a unique-key right side. Output contains only matching left rows, in left
/// order.
pub fn inner_join(
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
) -> Result<JoinResult> {
    let probe_index = build_unique_index(right, right_key)?;
    let left_key_col = left.column(left_key)?;

    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<usize> = Vec::new();
    for i in 0..left.num_rows() {
        let k = left_key_col.value(i);
        if k.is_null() {
            continue;
        }
        if let Some(&j) = probe_index.get(&k) {
            left_rows.push(i);
            right_rows.push(j);
        }
    }

    let left_subset = left.take(&left_rows);
    let matched = left_rows.len();
    let table = assemble(&left_subset, right, right_key, |col: &Column| {
        col.take(&right_rows)
    })?;
    Ok(JoinResult {
        table,
        matched_rows: matched,
        left_rows: left.num_rows(),
    })
}

/// Builds a `Value -> row index` map for the right side, erroring on
/// duplicate non-NULL keys (the many-to-one requirement).
fn build_unique_index(right: &Table, right_key: &str) -> Result<HashMap<Value, usize>> {
    let key_col = right.column(right_key)?;
    let mut index: HashMap<Value, usize> = HashMap::with_capacity(right.num_rows());
    for j in 0..right.num_rows() {
        let k = key_col.value(j);
        if k.is_null() {
            continue;
        }
        if index.insert(k.clone(), j).is_some() {
            return Err(TableError::DuplicateJoinKey(k.to_string()));
        }
    }
    Ok(index)
}

/// Combines the (already row-aligned) left table with gathered right columns.
fn assemble<F>(left: &Table, right: &Table, right_key: &str, gather: F) -> Result<Table>
where
    F: Fn(&Column) -> Column,
{
    let mut out = left
        .clone()
        .renamed(format!("{}_join_{}", left.name(), right.name()));
    for field in right.schema().fields() {
        if field.name == right_key {
            continue; // the key is already present via the left table
        }
        let gathered = gather(right.column(&field.name)?);
        let name = if out.schema().contains(&field.name) {
            format!("{}.{}", right.name(), field.name)
        } else {
            field.name.clone()
        };
        out = out.with_column(name, gathered)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn train() -> Table {
        Table::builder("train")
            .push_str_column("k", vec!["a", "a", "b", "c"])
            .push_int_column("y", vec![1, 2, 3, 4])
            .build()
            .unwrap()
    }

    fn aug() -> Table {
        Table::builder("aug")
            .push_str_column("k", vec!["a", "b", "d"])
            .push_float_column("x", vec![10.0, 20.0, 40.0])
            .build()
            .unwrap()
    }

    #[test]
    fn left_outer_join_keeps_all_left_rows() {
        let res = left_outer_join(&train(), "k", &aug(), "k").unwrap();
        assert_eq!(res.left_rows, 4);
        assert_eq!(res.matched_rows, 3);
        assert!((res.containment() - 0.75).abs() < 1e-12);
        let t = &res.table;
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.value(0, "x").unwrap(), Value::Float(10.0));
        assert_eq!(t.value(1, "x").unwrap(), Value::Float(10.0));
        assert_eq!(t.value(2, "x").unwrap(), Value::Float(20.0));
        assert_eq!(t.value(3, "x").unwrap(), Value::Null);
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let res = inner_join(&train(), "k", &aug(), "k").unwrap();
        let t = &res.table;
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(2, "y").unwrap(), Value::Int(3));
        assert_eq!(t.value(2, "x").unwrap(), Value::Float(20.0));
    }

    #[test]
    fn duplicate_right_keys_rejected() {
        let bad = Table::builder("aug")
            .push_str_column("k", vec!["a", "a"])
            .push_float_column("x", vec![1.0, 2.0])
            .build()
            .unwrap();
        let err = left_outer_join(&train(), "k", &bad, "k").unwrap_err();
        assert!(matches!(err, TableError::DuplicateJoinKey(_)));
    }

    #[test]
    fn null_left_keys_do_not_match() {
        let left = Table::builder("train")
            .push_value_column("k", DataType::Str, &[Value::from("a"), Value::Null])
            .unwrap()
            .push_int_column("y", vec![1, 2])
            .build()
            .unwrap();
        let res = left_outer_join(&left, "k", &aug(), "k").unwrap();
        assert_eq!(res.matched_rows, 1);
        assert_eq!(res.table.value(1, "x").unwrap(), Value::Null);
    }

    #[test]
    fn colliding_column_names_are_prefixed() {
        let right = Table::builder("demo")
            .push_str_column("k", vec!["a"])
            .push_int_column("y", vec![99])
            .build()
            .unwrap();
        let res = left_outer_join(&train(), "k", &right, "k").unwrap();
        assert!(res.table.schema().contains("demo.y"));
        assert_eq!(res.table.value(0, "demo.y").unwrap(), Value::Int(99));
        assert_eq!(res.table.value(0, "y").unwrap(), Value::Int(1));
    }

    #[test]
    fn missing_key_column_errors() {
        assert!(left_outer_join(&train(), "missing", &aug(), "k").is_err());
        assert!(inner_join(&train(), "k", &aug(), "missing").is_err());
    }
}
