//! Group-by aggregation (the featurization function `AGG` of Section III-B).
//!
//! Given a candidate table `Tcand[K_Z, Z]` that may have a many-to-many
//! relationship with the base table, the paper derives the augmentation table
//! `Taug[K_X, X]` with `SELECT K_Z AS K_X, AGG(Z) AS X FROM Tcand GROUP BY
//! K_Z`. This module implements that query and the catalogue of aggregation
//! functions discussed in the paper (`AVG`, `MODE`, `COUNT`, …).

use std::collections::HashMap;
use std::fmt;

use crate::column::ColumnBuilder;
use crate::error::TableError;
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::Result;

/// Aggregation (featurization) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregation {
    /// Arithmetic mean (numeric input only). Output: float.
    Avg,
    /// Sum (numeric input only). Output: float.
    Sum,
    /// Number of rows per key (any input type). Output: int.
    Count,
    /// Number of distinct values per key (any input type). Output: int.
    CountDistinct,
    /// Minimum value (any ordered input). Output: same type as input.
    Min,
    /// Maximum value (any ordered input). Output: same type as input.
    Max,
    /// Most frequent value; ties broken by value order for determinism.
    /// Output: same type as input.
    Mode,
    /// Median (numeric input only; mean of the two middle values for even
    /// counts). Output: float.
    Median,
    /// First value in table order (the strategy used by the CSK baseline for
    /// repeated keys). Output: same type as input.
    First,
}

impl Aggregation {
    /// All supported aggregations.
    pub const ALL: [Self; 9] = [
        Self::Avg,
        Self::Sum,
        Self::Count,
        Self::CountDistinct,
        Self::Min,
        Self::Max,
        Self::Mode,
        Self::Median,
        Self::First,
    ];

    /// Upper-case SQL-ish name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Avg => "AVG",
            Self::Sum => "SUM",
            Self::Count => "COUNT",
            Self::CountDistinct => "COUNT_DISTINCT",
            Self::Min => "MIN",
            Self::Max => "MAX",
            Self::Mode => "MODE",
            Self::Median => "MEDIAN",
            Self::First => "FIRST",
        }
    }

    /// Output data type for a given input type, or an error if the
    /// combination is not supported.
    pub fn output_dtype(self, input: DataType) -> Result<DataType> {
        match self {
            Self::Count | Self::CountDistinct => Ok(DataType::Int),
            Self::Avg | Self::Sum | Self::Median => {
                if input.is_numeric() {
                    Ok(DataType::Float)
                } else {
                    Err(TableError::IncompatibleAggregation {
                        aggregation: self.name().to_owned(),
                        dtype: input.name().to_owned(),
                    })
                }
            }
            Self::Min | Self::Max | Self::Mode | Self::First => Ok(input),
        }
    }

    /// Applies the aggregation to the (non-NULL) values of one group.
    ///
    /// Returns NULL when the group has no non-NULL values (except `COUNT`,
    /// which returns 0).
    #[must_use]
    pub fn apply(self, values: &[Value]) -> Value {
        let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        match self {
            Self::Count => Value::Int(non_null.len() as i64),
            Self::CountDistinct => {
                let mut distinct: Vec<&Value> = non_null.clone();
                distinct.sort();
                distinct.dedup();
                Value::Int(distinct.len() as i64)
            }
            _ if non_null.is_empty() => Value::Null,
            Self::Avg => {
                let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            Self::Sum => {
                let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum())
                }
            }
            Self::Median => {
                let mut nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    return Value::Null;
                }
                nums.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN medians"));
                let mid = nums.len() / 2;
                if nums.len() % 2 == 1 {
                    Value::Float(nums[mid])
                } else {
                    Value::Float((nums[mid - 1] + nums[mid]) / 2.0)
                }
            }
            Self::Min => (*non_null.iter().min().expect("non-empty")).clone(),
            Self::Max => (*non_null.iter().max().expect("non-empty")).clone(),
            Self::Mode => {
                let mut counts: HashMap<&Value, usize> = HashMap::new();
                for v in &non_null {
                    *counts.entry(*v).or_default() += 1;
                }
                let mut best: Option<(&Value, usize)> = None;
                for (v, c) in counts {
                    best = match best {
                        None => Some((v, c)),
                        Some((bv, bc)) => {
                            if c > bc || (c == bc && v < bv) {
                                Some((v, c))
                            } else {
                                Some((bv, bc))
                            }
                        }
                    };
                }
                best.map_or(Value::Null, |(v, _)| v.clone())
            }
            Self::First => (*non_null.first().expect("non-empty")).clone(),
        }
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Evaluates `SELECT key AS key, AGG(value) AS agg_name(value) FROM table
/// GROUP BY key`, producing a table with one row per distinct non-NULL key.
///
/// The output preserves the order of first appearance of each key, which
/// keeps downstream experiments deterministic. Rows whose key is NULL are
/// dropped, matching the paper's treatment of NULL join keys.
pub fn group_by_aggregate(
    table: &Table,
    key: &str,
    value: &str,
    agg: Aggregation,
) -> Result<Table> {
    let key_col = table.column(key)?;
    let value_col = table.column(value)?;
    let out_dtype = agg.output_dtype(value_col.dtype())?;

    // Group row indices by key, preserving first-appearance order.
    let mut order: Vec<Value> = Vec::new();
    let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
    for i in 0..table.num_rows() {
        let k = key_col.value(i);
        if k.is_null() {
            continue;
        }
        groups
            .entry(k.clone())
            .or_insert_with(|| {
                order.push(k);
                Vec::new()
            })
            .push(i);
    }

    let mut key_builder = ColumnBuilder::new(key_col.dtype());
    let mut value_builder = ColumnBuilder::new(out_dtype);
    for k in &order {
        let rows = &groups[k];
        let values: Vec<Value> = rows.iter().map(|&i| value_col.value(i)).collect();
        key_builder.push_value(k.clone())?;
        value_builder.push_value(agg.apply(&values))?;
    }

    let out_value_name = format!("{}({value})", agg.name());
    Table::builder(format!("{}_grouped", table.name()))
        .push_column(key, key_builder.finish())
        .push_column(out_value_name, value_builder.finish())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(ints: &[i64]) -> Vec<Value> {
        ints.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn paper_example_2_aggregations() {
        // Example 2 of the paper: Tcand[KZ] = [a,b,b,b,c,c,c],
        // Tcand[Z] = [1,2,2,5,0,3,3]; AVG -> {a:1, b:3, c:2},
        // MODE -> {a:1, b:2, c:3}, COUNT -> {a:1, b:3, c:3}.
        let b_group = vals(&[2, 2, 5]);
        let c_group = vals(&[0, 3, 3]);
        assert_eq!(Aggregation::Avg.apply(&vals(&[1])), Value::Float(1.0));
        assert_eq!(Aggregation::Avg.apply(&b_group), Value::Float(3.0));
        assert_eq!(Aggregation::Avg.apply(&c_group), Value::Float(2.0));
        assert_eq!(Aggregation::Mode.apply(&b_group), Value::Int(2));
        assert_eq!(Aggregation::Mode.apply(&c_group), Value::Int(3));
        assert_eq!(Aggregation::Count.apply(&b_group), Value::Int(3));
        assert_eq!(Aggregation::Count.apply(&c_group), Value::Int(3));
    }

    #[test]
    fn min_max_median_first() {
        let g = vals(&[5, 1, 3, 3]);
        assert_eq!(Aggregation::Min.apply(&g), Value::Int(1));
        assert_eq!(Aggregation::Max.apply(&g), Value::Int(5));
        assert_eq!(Aggregation::Median.apply(&g), Value::Float(3.0));
        assert_eq!(Aggregation::First.apply(&g), Value::Int(5));
        assert_eq!(Aggregation::Median.apply(&vals(&[1, 2])), Value::Float(1.5));
        assert_eq!(Aggregation::CountDistinct.apply(&g), Value::Int(3));
    }

    #[test]
    fn nulls_are_ignored_except_count() {
        let g = vec![Value::Null, Value::Int(2), Value::Null];
        assert_eq!(Aggregation::Avg.apply(&g), Value::Float(2.0));
        assert_eq!(Aggregation::Count.apply(&g), Value::Int(1));
        let empty = vec![Value::Null, Value::Null];
        assert_eq!(Aggregation::Avg.apply(&empty), Value::Null);
        assert_eq!(Aggregation::Count.apply(&empty), Value::Int(0));
        assert_eq!(Aggregation::Mode.apply(&empty), Value::Null);
    }

    #[test]
    fn mode_tie_break_is_deterministic() {
        let g = vals(&[2, 1, 1, 2]);
        // Both appear twice; the smaller value wins.
        assert_eq!(Aggregation::Mode.apply(&g), Value::Int(1));
        let strs = vec![Value::from("b"), Value::from("a")];
        assert_eq!(Aggregation::Mode.apply(&strs), Value::from("a"));
    }

    #[test]
    fn output_dtype_rules() {
        assert_eq!(
            Aggregation::Count.output_dtype(DataType::Str).unwrap(),
            DataType::Int
        );
        assert_eq!(
            Aggregation::Avg.output_dtype(DataType::Int).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Aggregation::Mode.output_dtype(DataType::Str).unwrap(),
            DataType::Str
        );
        assert!(Aggregation::Avg.output_dtype(DataType::Str).is_err());
        assert!(Aggregation::Median.output_dtype(DataType::Str).is_err());
    }

    #[test]
    fn group_by_aggregate_matches_paper_example() {
        let t = Table::builder("cand")
            .push_str_column("k", vec!["a", "b", "b", "b", "c", "c", "c"])
            .push_int_column("z", vec![1, 2, 2, 5, 0, 3, 3])
            .build()
            .unwrap();
        let agg = group_by_aggregate(&t, "k", "z", Aggregation::Avg).unwrap();
        assert_eq!(agg.num_rows(), 3);
        assert_eq!(agg.value(0, "k").unwrap(), Value::from("a"));
        assert_eq!(agg.value(0, "AVG(z)").unwrap(), Value::Float(1.0));
        assert_eq!(agg.value(1, "AVG(z)").unwrap(), Value::Float(3.0));
        assert_eq!(agg.value(2, "AVG(z)").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn group_by_drops_null_keys() {
        let t = Table::builder("cand")
            .push_value_column(
                "k",
                DataType::Str,
                &[Value::from("a"), Value::Null, Value::from("a")],
            )
            .unwrap()
            .push_int_column("z", vec![1, 100, 3])
            .build()
            .unwrap();
        let agg = group_by_aggregate(&t, "k", "z", Aggregation::Sum).unwrap();
        assert_eq!(agg.num_rows(), 1);
        assert_eq!(agg.value(0, "SUM(z)").unwrap(), Value::Float(4.0));
    }

    #[test]
    fn group_by_missing_column_errors() {
        let t = Table::builder("t")
            .push_int_column("a", vec![1])
            .build()
            .unwrap();
        assert!(group_by_aggregate(&t, "nope", "a", Aggregation::Count).is_err());
        assert!(group_by_aggregate(&t, "a", "nope", Aggregation::Count).is_err());
    }
}
