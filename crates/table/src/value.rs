//! Scalar values and data types.
//!
//! The paper distinguishes *discrete* (categorical, represented as strings)
//! from *continuous* (numerical) attributes, and additionally considers
//! *mixture* attributes — numerical columns with repeated values produced by
//! many-to-one joins (Section II, "Data Types"). At the storage level we keep
//! three physical types: 64-bit integers, 64-bit floats, and strings; NULL is
//! represented explicitly.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use joinmi_hash::{KeyHash, KeyHasher};

/// Physical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string (categorical).
    Str,
}

impl DataType {
    /// Returns `true` if the type is numeric (int or float).
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, Self::Int | Self::Float)
    }

    /// Short lowercase name, used in error messages and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Int => "int",
            Self::Float => "float",
            Self::Str => "str",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns the data type of the value, or `None` for NULL.
    #[must_use]
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Self::Null => None,
            Self::Int(_) => Some(DataType::Int),
            Self::Float(_) => Some(DataType::Float),
            Self::Str(_) => Some(DataType::Str),
        }
    }

    /// Returns `true` if the value is NULL.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Self::Null)
    }

    /// Returns the value as a float if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Int(v) => Some(*v as f64),
            Self::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as an integer if it is an `Int`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Self::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Hashes the value with the given [`KeyHasher`] (used for join keys).
    #[must_use]
    pub fn key_hash(&self, hasher: &KeyHasher) -> KeyHash {
        match self {
            Self::Null => hasher.hash_null(),
            Self::Int(v) => hasher.hash_int(*v),
            Self::Float(v) => hasher.hash_float(*v),
            Self::Str(s) => hasher.hash_str(s),
        }
    }

    /// Canonical bit pattern for floats so that `Eq`/`Hash` are consistent:
    /// all NaNs collapse to one pattern and `-0.0 == +0.0`.
    fn canonical_float_bits(v: f64) -> u64 {
        if v.is_nan() {
            f64::NAN.to_bits()
        } else if v == 0.0 {
            0.0f64.to_bits()
        } else {
            v.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Null, Self::Null) => true,
            (Self::Int(a), Self::Int(b)) => a == b,
            (Self::Float(a), Self::Float(b)) => {
                Self::canonical_float_bits(*a) == Self::canonical_float_bits(*b)
            }
            (Self::Str(a), Self::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Self::Null => 0u8.hash(state),
            Self::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Self::Float(v) => {
                2u8.hash(state);
                Self::canonical_float_bits(*v).hash(state);
            }
            Self::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < Int/Float (by numeric value) < Str (lexicographic).
    /// Mixed int/float compare numerically; NaN sorts above all other floats.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::{Float, Int, Null, Str};
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaN handling: NaN == NaN, NaN > everything else.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp only fails on NaN"),
        }
    })
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Null => f.write_str(""),
            Self::Int(v) => write!(f, "{v}"),
            Self::Float(v) => write!(f, "{v}"),
            Self::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Self::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn dtype_and_predicates() {
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int));
        assert_eq!(Value::Float(1.0).dtype(), Some(DataType::Float));
        assert_eq!(Value::from("a").dtype(), Some(DataType::Str));
        assert_eq!(Value::Null.dtype(), None);
        assert!(Value::Null.is_null());
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
    }

    #[test]
    fn float_equality_is_canonical() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(1.0), Value::Int(1));
    }

    #[test]
    fn hashable_as_group_key() {
        let mut groups: HashMap<Value, usize> = HashMap::new();
        *groups.entry(Value::Float(0.0)).or_default() += 1;
        *groups.entry(Value::Float(-0.0)).or_default() += 1;
        *groups.entry(Value::from("a")).or_default() += 1;
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&Value::Float(0.0)], 2);
    }

    #[test]
    fn total_order() {
        let mut vals = vec![
            Value::from("b"),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::from("a"),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(1),
                Value::Float(1.5),
                Value::Int(2),
                Value::from("a"),
                Value::from("b"),
            ]
        );
    }

    #[test]
    fn nan_sorts_last_among_numbers() {
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-1.0),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Float(-1.0));
        assert_eq!(vals[1], Value::Float(1.0));
        assert!(matches!(vals[2], Value::Float(v) if v.is_nan()));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn key_hash_distinguishes_types() {
        let h = KeyHasher::default_64();
        assert_ne!(Value::Int(1).key_hash(&h), Value::from("1").key_hash(&h));
        assert_eq!(Value::Int(7).key_hash(&h), Value::Int(7).key_hash(&h));
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
    }
}
