//! Minimal CSV reading / writing with type inference.
//!
//! Implements RFC-4180-style quoting (double quotes, embedded quotes doubled,
//! embedded separators and newlines inside quoted fields). This is enough to
//! load open-data-portal style exports for the examples and tests without an
//! external dependency.

use crate::column::ColumnBuilder;
use crate::error::TableError;
use crate::infer::{infer_column_type, parse_value};
use crate::table::Table;
use crate::Result;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Whether the first record is a header row (default `true`).
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            separator: ',',
            has_header: true,
        }
    }
}

/// Parses CSV text into a table, inferring column types.
pub fn read_csv_str(name: &str, text: &str, options: &CsvOptions) -> Result<Table> {
    let records = parse_records(text, options.separator)?;
    if records.is_empty() {
        return Err(TableError::EmptyTable(name.to_owned()));
    }

    let (header, data_records): (Vec<String>, &[Vec<String>]) = if options.has_header {
        (records[0].clone(), &records[1..])
    } else {
        let width = records[0].len();
        (
            (0..width).map(|i| format!("col{i}")).collect(),
            &records[..],
        )
    };

    let ncols = header.len();
    for (i, rec) in data_records.iter().enumerate() {
        if rec.len() != ncols {
            return Err(TableError::CsvError(format!(
                "record {} has {} fields, expected {ncols}",
                i + 1,
                rec.len()
            )));
        }
    }

    let mut builder = Table::builder(name);
    for (col_idx, col_name) in header.iter().enumerate() {
        let cells = data_records.iter().map(|r| r[col_idx].as_str());
        let dtype = infer_column_type(cells.clone());
        let mut col_builder = ColumnBuilder::new(dtype);
        for cell in cells {
            let value = parse_value(cell, dtype).ok_or_else(|| TableError::ParseError {
                raw: cell.to_owned(),
                dtype: dtype.name().to_owned(),
            })?;
            col_builder.push_value(value)?;
        }
        builder = builder.push_column(col_name.clone(), col_builder.finish());
    }
    builder.build()
}

/// Serializes a table to CSV text (with a header row).
#[must_use]
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape_field(&f.name, ','))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in 0..table.num_rows() {
        let cells: Vec<String> = (0..table.num_columns())
            .map(|c| escape_field(&table.column_at(c).value(row).to_string(), ','))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn escape_field(field: &str, sep: char) -> String {
    if field.contains(sep) || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Splits CSV text into records of fields, honoring quotes.
fn parse_records(text: &str, sep: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any_char_in_record = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any_char_in_record = true;
            }
            c if c == sep => {
                record.push(std::mem::take(&mut field));
                any_char_in_record = true;
            }
            '\r' => {
                // Swallow; handled by the following '\n' (or end of record).
            }
            '\n' => {
                if any_char_in_record || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                any_char_in_record = false;
            }
            _ => {
                field.push(c);
                any_char_in_record = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::CsvError("unterminated quoted field".to_owned()));
    }
    if any_char_in_record || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    #[test]
    fn round_trip_simple_table() {
        let csv = "zip,borough,trips\n11201,Brooklyn,136\n10011,Manhattan,112\n";
        let t = read_csv_str("taxi", csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column("zip").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("borough").unwrap().dtype(), DataType::Str);
        assert_eq!(t.value(0, "borough").unwrap(), Value::from("Brooklyn"));
        assert_eq!(t.value(1, "trips").unwrap(), Value::Int(112));

        let out = write_csv_string(&t);
        let t2 = read_csv_str("taxi2", &out, &CsvOptions::default()).unwrap();
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.value(0, "trips").unwrap(), Value::Int(136));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "name,notes\nalpha,\"hello, world\"\nbeta,\"she said \"\"hi\"\"\"\n";
        let t = read_csv_str("q", csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, "notes").unwrap(), Value::from("hello, world"));
        assert_eq!(t.value(1, "notes").unwrap(), Value::from("she said \"hi\""));
    }

    #[test]
    fn missing_values_become_null() {
        let csv = "a,b\n1,\n2,5\n";
        let t = read_csv_str("m", csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, "b").unwrap(), Value::Null);
        assert_eq!(t.value(1, "b").unwrap(), Value::Int(5));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let csv = "a,b\n1,2\n3\n";
        assert!(read_csv_str("r", csv, &CsvOptions::default()).is_err());
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        let csv = "a\n\"oops\n";
        assert!(read_csv_str("u", csv, &CsvOptions::default()).is_err());
    }

    #[test]
    fn headerless_mode_and_custom_separator() {
        let csv = "1;x\n2;y\n";
        let opts = CsvOptions {
            separator: ';',
            has_header: false,
        };
        let t = read_csv_str("h", csv, &opts).unwrap();
        assert_eq!(t.schema().names(), vec!["col0", "col1"]);
        assert_eq!(t.value(1, "col1").unwrap(), Value::from("y"));
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n3,4\r\n";
        let t = read_csv_str("crlf", csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "b").unwrap(), Value::Int(4));
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_csv_str("e", "", &CsvOptions::default()).is_err());
    }
}
