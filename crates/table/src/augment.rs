//! The full join-aggregation query of Section III-B.
//!
//! ```sql
//! SELECT Ttrain[KY], Ttrain[Y], Taug[X]
//! FROM Ttrain
//! LEFT JOIN (
//!     SELECT KZ AS KX, AGG(Z) AS X FROM Tcand GROUP BY KZ
//! ) AS Taug
//! ON Ttrain[KY] = Taug[KX];
//! ```
//!
//! This is the *exact* (fully materialized) computation that the sketches in
//! `joinmi-sketch` approximate; every experiment that reports a "full join"
//! baseline goes through [`augment`].

use crate::aggregate::{group_by_aggregate, Aggregation};
use crate::join::{left_outer_join, JoinResult};
use crate::table::Table;
use crate::Result;

/// Specification of one augmentation: which columns to join on, which column
/// to featurize, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AugmentSpec {
    /// Join-key column in the base (training) table (`K_Y`).
    pub left_key: String,
    /// Target column in the base table (`Y`).
    pub target: String,
    /// Join-key column in the candidate table (`K_Z`).
    pub right_key: String,
    /// Value column in the candidate table (`Z`).
    pub feature: String,
    /// Featurization function (`AGG`).
    pub aggregation: Aggregation,
}

impl AugmentSpec {
    /// Creates a spec with the given columns and aggregation.
    pub fn new(
        left_key: impl Into<String>,
        target: impl Into<String>,
        right_key: impl Into<String>,
        feature: impl Into<String>,
        aggregation: Aggregation,
    ) -> Self {
        Self {
            left_key: left_key.into(),
            target: target.into(),
            right_key: right_key.into(),
            feature: feature.into(),
            aggregation,
        }
    }

    /// Name of the derived feature column in the augmented table.
    #[must_use]
    pub fn feature_column_name(&self) -> String {
        format!("{}({})", self.aggregation.name(), self.feature)
    }
}

/// Runs the join-aggregation query, returning the augmented table (same row
/// count as `train`) along with join statistics.
///
/// The result contains the columns of `train` plus one derived feature
/// column named `AGG(feature)`.
pub fn augment(train: &Table, cand: &Table, spec: &AugmentSpec) -> Result<JoinResult> {
    let aggregated = group_by_aggregate(cand, &spec.right_key, &spec.feature, spec.aggregation)?;
    left_outer_join(train, &spec.left_key, &aggregated, &spec.right_key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn example_2_from_the_paper() {
        // Ttrain[KY] = [a, a, b, c]; Tcand[KZ] = [a,b,b,b,c,c,c],
        // Tcand[Z] = [1,2,2,5,0,3,3].
        let train = Table::builder("train")
            .push_str_column("ky", vec!["a", "a", "b", "c"])
            .push_int_column("y", vec![7, 8, 9, 10])
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_str_column("kz", vec!["a", "b", "b", "b", "c", "c", "c"])
            .push_int_column("z", vec![1, 2, 2, 5, 0, 3, 3])
            .build()
            .unwrap();

        // AVG generates X = [1, 1, 3, 2].
        let spec = AugmentSpec::new("ky", "y", "kz", "z", Aggregation::Avg);
        let res = augment(&train, &cand, &spec).unwrap();
        let col = spec.feature_column_name();
        assert_eq!(res.table.num_rows(), 4);
        let xs: Vec<Value> = (0..4).map(|i| res.table.value(i, &col).unwrap()).collect();
        assert_eq!(
            xs,
            vec![
                Value::Float(1.0),
                Value::Float(1.0),
                Value::Float(3.0),
                Value::Float(2.0)
            ]
        );

        // MODE generates X = [1, 1, 2, 3].
        let spec = AugmentSpec::new("ky", "y", "kz", "z", Aggregation::Mode);
        let res = augment(&train, &cand, &spec).unwrap();
        let col = spec.feature_column_name();
        let xs: Vec<Value> = (0..4).map(|i| res.table.value(i, &col).unwrap()).collect();
        assert_eq!(
            xs,
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(3)]
        );

        // COUNT generates X = [1, 1, 3, 3].
        let spec = AugmentSpec::new("ky", "y", "kz", "z", Aggregation::Count);
        let res = augment(&train, &cand, &spec).unwrap();
        let col = spec.feature_column_name();
        let xs: Vec<Value> = (0..4).map(|i| res.table.value(i, &col).unwrap()).collect();
        assert_eq!(
            xs,
            vec![Value::Int(1), Value::Int(1), Value::Int(3), Value::Int(3)]
        );
    }

    #[test]
    fn unmatched_left_rows_get_null_feature() {
        let train = Table::builder("train")
            .push_str_column("k", vec!["a", "zzz"])
            .push_int_column("y", vec![1, 2])
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_str_column("k", vec!["a"])
            .push_int_column("z", vec![5])
            .build()
            .unwrap();
        let spec = AugmentSpec::new("k", "y", "k", "z", Aggregation::Avg);
        let res = augment(&train, &cand, &spec).unwrap();
        assert_eq!(res.matched_rows, 1);
        assert_eq!(res.table.value(1, "AVG(z)").unwrap(), Value::Null);
    }

    #[test]
    fn augmented_row_count_always_matches_train() {
        let train = Table::builder("train")
            .push_int_column("k", (0..50).collect::<Vec<i64>>())
            .push_int_column("y", (0..50).map(|i| i * 2).collect::<Vec<i64>>())
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_int_column("k", (0..200).map(|i| i % 25).collect::<Vec<i64>>())
            .push_float_column("z", (0..200).map(|i| i as f64).collect::<Vec<f64>>())
            .build()
            .unwrap();
        for agg in Aggregation::ALL {
            let spec = AugmentSpec::new("k", "y", "k", "z", agg);
            let res = augment(&train, &cand, &spec).unwrap();
            assert_eq!(res.table.num_rows(), train.num_rows(), "agg {agg}");
        }
    }
}
