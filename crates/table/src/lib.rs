//! In-memory relational substrate for `joinmi`.
//!
//! The paper's problem setting (Section III) is relational: a base table
//! `Ttrain[K_Y, Y]`, a candidate table `Tcand[K_Z, Z]`, a group-by aggregation
//! that turns the candidate into an augmentation table `Taug[K_X, X]`, and a
//! left-outer many-to-one join that produces the augmented table whose columns
//! `X` and `Y` we want the mutual information of. This crate implements that
//! substrate from scratch:
//!
//! * typed [`Value`]s and [`Column`]s (integer, float, string, with NULLs),
//! * [`Schema`]s and [`Table`]s with a builder API,
//! * hash equi-joins — inner and left-outer ([`join`]),
//! * group-by [`aggregate`]s (`AVG`, `SUM`, `COUNT`, `MIN`, `MAX`, `MODE`,
//!   `MEDIAN`, `FIRST`),
//! * the full join-aggregation query of Section III-B ([`augment`](mod@augment)),
//! * CSV reading/writing and column type inference ([`csv`], [`infer`]) — the
//!   role Tablesaw plays in the paper's real-data pipeline.
//!
//! Everything here computes *exact* results on materialized data; it is the
//! ground truth that the sketches in `joinmi-sketch` approximate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod augment;
pub mod column;
pub mod csv;
pub mod error;
pub mod infer;
pub mod join;
pub mod schema;
pub mod table;
pub mod value;

pub use aggregate::{group_by_aggregate, Aggregation};
pub use augment::{augment, AugmentSpec};
pub use column::{Column, ColumnBuilder};
pub use csv::{read_csv_str, write_csv_string, CsvOptions};
pub use error::TableError;
pub use infer::{infer_column_type, parse_value};
pub use join::{inner_join, left_outer_join, JoinResult};
pub use schema::{Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};

/// Convenient result alias for table operations.
pub type Result<T> = std::result::Result<T, TableError>;
