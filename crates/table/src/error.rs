//! Error type for table operations.

use std::fmt;

/// Errors produced by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A referenced column does not exist in the table.
    ColumnNotFound {
        /// Table name.
        table: String,
        /// Column name that was requested.
        column: String,
    },
    /// Two columns that must have equal length do not.
    LengthMismatch {
        /// What was being constructed.
        context: String,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A column with the same name was added twice.
    DuplicateColumn(String),
    /// An aggregation was applied to an incompatible data type.
    IncompatibleAggregation {
        /// The aggregation that was requested.
        aggregation: String,
        /// The data type it was applied to.
        dtype: String,
    },
    /// A value could not be parsed as the expected data type.
    ParseError {
        /// The raw text.
        raw: String,
        /// The expected type.
        dtype: String,
    },
    /// Malformed CSV input.
    CsvError(String),
    /// A table was built with no columns / no rows where at least one is needed.
    EmptyTable(String),
    /// The operation requires a many-to-one relationship but found duplicate keys.
    DuplicateJoinKey(String),
    /// The operation is not supported in the object's current state — e.g.
    /// ingesting into, or materializing a full join from, a sketch-only
    /// repository loaded from disk (which holds no raw tables).
    Unsupported(String),
    /// The target repository has been sealed (frozen, its incremental state
    /// dropped) and rejects further ingest. Distinct from
    /// [`TableError::Unsupported`] so callers can tell "this repository was
    /// deliberately frozen" from "this repository never supported the
    /// operation".
    Sealed(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnNotFound { table, column } => {
                write!(f, "column `{column}` not found in table `{table}`")
            }
            Self::LengthMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "length mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            Self::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            Self::IncompatibleAggregation { aggregation, dtype } => {
                write!(
                    f,
                    "aggregation {aggregation} cannot be applied to {dtype} values"
                )
            }
            Self::ParseError { raw, dtype } => {
                write!(f, "cannot parse `{raw}` as {dtype}")
            }
            Self::CsvError(msg) => write!(f, "CSV error: {msg}"),
            Self::EmptyTable(name) => write!(f, "table `{name}` has no data"),
            Self::DuplicateJoinKey(key) => {
                write!(
                    f,
                    "join key `{key}` appears more than once on the aggregated side"
                )
            }
            Self::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            Self::Sealed(msg) => write!(f, "repository is sealed: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offender() {
        let e = TableError::ColumnNotFound {
            table: "taxi".into(),
            column: "zip".into(),
        };
        assert!(e.to_string().contains("zip"));
        assert!(e.to_string().contains("taxi"));

        let e = TableError::DuplicateColumn("x".into());
        assert!(e.to_string().contains('x'));

        let e = TableError::ParseError {
            raw: "abc".into(),
            dtype: "int".into(),
        };
        assert!(e.to_string().contains("abc"));
    }
}
