//! Seeded unit-range hashing (`h_u` in the paper).
//!
//! A [`UnitHasher`] maps 64-bit key digests to `[0, 1)` deterministically.
//! Two sketches built with the same seed produce *coordinated* samples: a key
//! that hashes low in one table hashes equally low in the other, which is what
//! maximizes the expected sketch-join size (Section IV).

use crate::fibonacci::{digest_to_unit, fibonacci_hash_u64};
use crate::splitmix::SplitMix64;

/// Deterministic, seeded mapping from 64-bit digests to the unit interval.
///
/// The mapping is `digest -> unit(fibonacci(digest ^ seed'))` where `seed'`
/// is a mixed version of the user seed, i.e. Fibonacci hashing as in the
/// paper, but salted so independent repetitions of an experiment can use
/// independent hash functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitHasher {
    salt: u64,
}

impl UnitHasher {
    /// Creates a unit hasher for the given seed.
    ///
    /// Seed `0` reproduces plain (unsalted) Fibonacci hashing.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let salt = if seed == 0 { 0 } else { SplitMix64::mix(seed) };
        Self { salt }
    }

    /// Maps a digest to `[0, 1)`.
    #[inline]
    #[must_use]
    pub fn unit(&self, digest: u64) -> f64 {
        digest_to_unit(self.digest(digest))
    }

    /// Returns the salted 64-bit digest (useful when a total order over keys
    /// is needed without converting to floating point, e.g. KMV selection).
    #[inline]
    #[must_use]
    pub fn digest(&self, digest: u64) -> u64 {
        fibonacci_hash_u64(digest ^ self.salt)
    }

    /// Maps the pair `(digest, occurrence)` to `[0, 1)`.
    ///
    /// This is the `h_u(⟨k, j⟩)` used by TUPSK: the `j`-th occurrence of key
    /// `k` is treated as a distinct sampling unit. `occurrence` is 1-based in
    /// the paper; any convention works as long as it is used consistently,
    /// and `pair_digest(k, 1)` must equal the digest used for aggregated
    /// (unique-key) sketches so that coordination is preserved.
    #[inline]
    #[must_use]
    pub fn pair_unit(&self, digest: u64, occurrence: u64) -> f64 {
        digest_to_unit(self.pair_digest(digest, occurrence))
    }

    /// Returns the salted 64-bit digest of the pair `(digest, occurrence)`.
    #[inline]
    #[must_use]
    pub fn pair_digest(&self, digest: u64, occurrence: u64) -> u64 {
        // Combine with a mix so that (k, j) and (k', j') never alias by simple
        // arithmetic coincidence, then salt like the scalar variant.
        let combined = SplitMix64::mix(digest ^ SplitMix64::mix(occurrence));
        fibonacci_hash_u64(combined ^ self.salt)
    }

    /// Returns the seed salt (for diagnostics / serialization).
    #[must_use]
    pub fn salt(&self) -> u64 {
        self.salt
    }
}

impl Default for UnitHasher {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordination_same_seed_same_value() {
        let a = UnitHasher::new(99);
        let b = UnitHasher::new(99);
        for k in 0..1000u64 {
            assert_eq!(a.unit(k), b.unit(k));
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = UnitHasher::new(1);
        let b = UnitHasher::new(2);
        let same = (0..1000u64).filter(|&k| a.unit(k) == b.unit(k)).count();
        assert!(
            same < 5,
            "seeds should produce different orderings, got {same} equal"
        );
    }

    #[test]
    fn pair_unit_occurrence_one_is_distinct_sampling_frame() {
        // The paper relies on ⟨k, 1⟩ being the shared frame between the
        // aggregated right sketch and the first occurrence on the left.
        let h = UnitHasher::new(7);
        for k in 0..100u64 {
            assert_eq!(h.pair_unit(k, 1), h.pair_unit(k, 1));
            assert_ne!(h.pair_unit(k, 1), h.pair_unit(k, 2));
        }
    }

    #[test]
    fn unit_values_in_range() {
        let h = UnitHasher::new(123);
        for k in 0..10_000u64 {
            let u = h.unit(k);
            assert!((0.0..1.0).contains(&u));
            let p = h.pair_unit(k, k % 7);
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn unsalted_matches_plain_fibonacci() {
        let h = UnitHasher::new(0);
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(h.unit(k), crate::fibonacci::fibonacci_unit(k));
        }
    }

    #[test]
    fn digest_order_matches_unit_order() {
        let h = UnitHasher::new(5);
        let mut keys: Vec<u64> = (0..500).collect();
        keys.sort_by(|a, b| h.unit(*a).partial_cmp(&h.unit(*b)).unwrap());
        let mut keys2: Vec<u64> = (0..500).collect();
        keys2.sort_by_key(|k| h.digest(*k));
        assert_eq!(keys, keys2);
    }
}
