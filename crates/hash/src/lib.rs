//! Hashing primitives used throughout `joinmi`.
//!
//! The sketching algorithms of the paper (Section IV, "Approach Overview")
//! require two hash functions:
//!
//! * a collision-resistant hash `h` that maps arbitrary join-key values to
//!   integers — we provide [MurmurHash3](murmur3) in both 32-bit and 128-bit
//!   flavours (the paper uses the 32-bit variant; the 128-bit variant is
//!   offered because real key domains easily exceed the birthday bound of a
//!   32-bit digest);
//! * a uniform hash `h_u` that maps integers to the unit range `[0, 1)` — we
//!   provide [Fibonacci hashing](fibonacci) as in the paper, plus a
//!   SplitMix64-based finalizer used for seeding and coordination.
//!
//! All hashers in this crate are deterministic given a seed, so sketches are
//! reproducible and two tables sketched independently (possibly on different
//! machines) remain *coordinated*: equal keys receive equal hash values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest_map;
pub mod fibonacci;
pub mod key;
pub mod murmur3;
pub mod splitmix;
pub mod unit;

pub use digest_map::{
    digest_map_with_capacity, digest_set_with_capacity, DigestBuildHasher, DigestHashMap,
    DigestHashSet, FixedHashMap,
};
pub use fibonacci::{fibonacci_hash_u64, FIBONACCI_MULTIPLIER};
pub use key::{KeyHash, KeyHasher};
pub use murmur3::{murmur3_x64_128, murmur3_x86_32};
pub use splitmix::SplitMix64;
pub use unit::UnitHasher;
