//! Hashing of join-key *values* (strings, integers, floats) to 64-bit digests.
//!
//! The paper assumes a collision-free hash `h` that maps arbitrary objects to
//! integers before the unit-range hash `h_u` is applied. [`KeyHasher`] fills
//! that role: it serializes a key value to bytes with a type tag (so `1` the
//! integer and `"1"` the string do not collide by construction) and digests
//! the bytes with MurmurHash3.

use crate::murmur3::{murmur3_x64_128, murmur3_x86_32};

/// A 64-bit digest of a join-key value.
///
/// Newtype so sketch code cannot accidentally mix raw row indices, occurrence
/// counters, and key digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyHash(pub u64);

impl KeyHash {
    /// Returns the raw digest.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Bit width of the key digest produced by a [`KeyHasher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyHashWidth {
    /// 32-bit MurmurHash3 (x86 variant) — the function used in the paper.
    /// Collisions become likely beyond ~65k distinct keys (birthday bound).
    Bits32,
    /// 64 bits taken from the 128-bit x64 MurmurHash3. Recommended default.
    #[default]
    Bits64,
}

/// Hashes join-key values into [`KeyHash`] digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyHasher {
    width: KeyHashWidth,
    seed: u32,
}

/// Type tags prepended to serialized values so values of different types
/// never collide structurally.
mod tag {
    pub const NULL: u8 = 0;
    pub const INT: u8 = 1;
    pub const FLOAT: u8 = 2;
    pub const STR: u8 = 3;
    pub const BYTES: u8 = 4;
}

impl KeyHasher {
    /// Creates a key hasher with the given digest width and seed.
    #[must_use]
    pub fn new(width: KeyHashWidth, seed: u32) -> Self {
        Self { width, seed }
    }

    /// Creates the default 64-bit hasher with seed 0.
    #[must_use]
    pub fn default_64() -> Self {
        Self::new(KeyHashWidth::Bits64, 0)
    }

    /// Creates the 32-bit hasher used in the paper.
    #[must_use]
    pub fn paper_32() -> Self {
        Self::new(KeyHashWidth::Bits32, 0)
    }

    /// Hashes raw bytes (with a bytes type tag).
    #[must_use]
    pub fn hash_bytes(&self, bytes: &[u8]) -> KeyHash {
        self.digest_tagged(tag::BYTES, bytes)
    }

    /// Hashes a string key.
    #[must_use]
    pub fn hash_str(&self, s: &str) -> KeyHash {
        self.digest_tagged(tag::STR, s.as_bytes())
    }

    /// Hashes an integer key.
    #[must_use]
    pub fn hash_int(&self, v: i64) -> KeyHash {
        self.digest_tagged(tag::INT, &v.to_le_bytes())
    }

    /// Hashes a floating-point key.
    ///
    /// Floats that compare equal must hash equally, so `-0.0` is normalized to
    /// `+0.0` and all NaNs to a single canonical NaN bit pattern.
    #[must_use]
    pub fn hash_float(&self, v: f64) -> KeyHash {
        let canonical = if v.is_nan() {
            f64::NAN.to_bits()
        } else if v == 0.0 {
            0.0f64.to_bits()
        } else {
            v.to_bits()
        };
        self.digest_tagged(tag::FLOAT, &canonical.to_le_bytes())
    }

    /// Hashes a NULL key. NULLs are given a digest so callers can decide
    /// whether to keep or drop them; sketch builders drop NULL keys.
    #[must_use]
    pub fn hash_null(&self) -> KeyHash {
        self.digest_tagged(tag::NULL, &[])
    }

    fn digest_tagged(&self, tag: u8, payload: &[u8]) -> KeyHash {
        let mut buf = Vec::with_capacity(payload.len() + 1);
        buf.push(tag);
        buf.extend_from_slice(payload);
        let digest = match self.width {
            KeyHashWidth::Bits32 => u64::from(murmur3_x86_32(&buf, self.seed)),
            KeyHashWidth::Bits64 => murmur3_x64_128(&buf, u64::from(self.seed)).0,
        };
        KeyHash(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_prevent_cross_type_collisions() {
        let h = KeyHasher::default_64();
        assert_ne!(h.hash_int(1), h.hash_str("1"));
        assert_ne!(h.hash_float(1.0), h.hash_int(1));
        assert_ne!(h.hash_str(""), h.hash_null());
    }

    #[test]
    fn equal_values_hash_equal() {
        let h = KeyHasher::default_64();
        assert_eq!(h.hash_str("brooklyn"), h.hash_str("brooklyn"));
        assert_eq!(h.hash_int(-5), h.hash_int(-5));
        assert_eq!(h.hash_float(2.5), h.hash_float(2.5));
    }

    #[test]
    fn float_normalization() {
        let h = KeyHasher::default_64();
        assert_eq!(h.hash_float(0.0), h.hash_float(-0.0));
        assert_eq!(h.hash_float(f64::NAN), h.hash_float(-f64::NAN));
    }

    #[test]
    fn seed_changes_digests() {
        let a = KeyHasher::new(KeyHashWidth::Bits64, 1);
        let b = KeyHasher::new(KeyHashWidth::Bits64, 2);
        assert_ne!(a.hash_str("x"), b.hash_str("x"));
    }

    #[test]
    fn paper_32_produces_32_bit_digests() {
        let h = KeyHasher::paper_32();
        for i in 0..100 {
            assert!(h.hash_int(i).raw() <= u64::from(u32::MAX));
        }
    }

    #[test]
    fn distinct_strings_distinct_digests_64() {
        let h = KeyHasher::default_64();
        let mut seen = std::collections::HashSet::new();
        for i in 0..50_000 {
            assert!(
                seen.insert(h.hash_str(&format!("zip-{i}"))),
                "collision at {i}"
            );
        }
    }
}
