//! SplitMix64: a tiny, fast, statistically strong 64-bit mixer / generator.
//!
//! Used in two places: (1) deriving independent sub-seeds from a single user
//! seed (e.g. one seed per sketch, per column, per trial) and (2) as the
//! finalizer that combines a key hash with a seed to produce coordinated but
//! seed-dependent sampling decisions.

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) pseudo-random
/// generator. Deterministic for a given seed; passes BigCrush when used as a
/// generator and is an excellent bit mixer when used as a hash finalizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value and advances the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// Returns the next value mapped into `[0, 1)`.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        crate::fibonacci::digest_to_unit(self.next_u64())
    }

    /// Stateless mixing function (the SplitMix64 output function).
    ///
    /// Useful as a finalizer: `mix(a ^ b)` combines two digests into one with
    /// full avalanche behaviour.
    #[inline]
    #[must_use]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives the `index`-th independent sub-seed from `seed`.
    ///
    /// All call sites that need several unrelated random streams from one user
    /// seed (e.g. the key hasher and the second-level Bernoulli sampler of a
    /// sketch) use this so the streams do not accidentally alias.
    #[must_use]
    pub fn derive_seed(seed: u64, index: u64) -> u64 {
        Self::mix(seed ^ Self::mix(index.wrapping_add(0x517C_C1B7_2722_0A95)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_seed_zero() {
        // First outputs of splitmix64 with seed 0 (from the reference C code).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn reference_sequence_seed_1234567() {
        let mut g = SplitMix64::new(1234567);
        // Values are pinned to guard against accidental algorithm changes.
        let first = g.next_u64();
        let mut g2 = SplitMix64::new(1234567);
        assert_eq!(first, g2.next_u64());
        assert_ne!(first, g2.next_u64());
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        let a = SplitMix64::derive_seed(42, 0);
        let b = SplitMix64::derive_seed(42, 1);
        let c = SplitMix64::derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, SplitMix64::derive_seed(42, 0));
    }

    #[test]
    fn next_unit_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = g.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn mix_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = SplitMix64::mix(0x0123_4567_89AB_CDEF);
        let mut total_flips = 0u32;
        for bit in 0..64 {
            let flipped = SplitMix64::mix(0x0123_4567_89AB_CDEF ^ (1u64 << bit));
            total_flips += (base ^ flipped).count_ones();
        }
        let avg = f64::from(total_flips) / 64.0;
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg}");
    }
}
