//! Fibonacci hashing.
//!
//! The paper implements the unit-range hash `h_u` with Fibonacci hashing
//! (Knuth, TAOCP vol. 3): multiply the input by `2^64 / φ` (where `φ` is the
//! golden ratio) and let the wrap-around scramble the high bits. The result is
//! an integer that is then interpreted as a fraction of the full 64-bit range,
//! yielding a value uniformly distributed in `[0, 1)` for well-distributed
//! inputs.

/// `⌊2^64 / φ⌋` rounded to the nearest odd number, the classic Fibonacci
/// hashing multiplier (also used by SplitMix64 as its increment).
pub const FIBONACCI_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

/// Scrambles `x` with Fibonacci hashing, returning a 64-bit digest.
///
/// Equal inputs give equal outputs; the multiplication by the golden-ratio
/// constant spreads consecutive inputs roughly uniformly over the 64-bit
/// space. An additional xor-shift is applied so that low-order bits of the
/// input also influence high-order bits of the output (plain Fibonacci
/// hashing only guarantees good behaviour for the *high* output bits).
#[inline]
#[must_use]
pub fn fibonacci_hash_u64(x: u64) -> u64 {
    let x = x ^ (x >> 31);
    x.wrapping_mul(FIBONACCI_MULTIPLIER)
}

/// Maps a 64-bit digest to the unit interval `[0, 1)`.
///
/// Uses the top 53 bits so the result is exactly representable as an `f64`.
#[inline]
#[must_use]
pub fn digest_to_unit(digest: u64) -> f64 {
    // 2^53 is the largest power of two such that every integer in [0, 2^53)
    // is exactly representable as f64.
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    ((digest >> 11) as f64) * SCALE
}

/// Convenience composition: Fibonacci-hash `x` and map it to `[0, 1)`.
#[inline]
#[must_use]
pub fn fibonacci_unit(x: u64) -> f64 {
    digest_to_unit(fibonacci_hash_u64(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_range_is_half_open() {
        for x in [0u64, 1, 2, 42, u64::MAX, u64::MAX - 1, 1 << 32, 0xdead_beef] {
            let u = fibonacci_unit(x);
            assert!((0.0..1.0).contains(&u), "h_u({x}) = {u} out of range");
        }
    }

    #[test]
    fn deterministic() {
        for x in 0..1000u64 {
            assert_eq!(fibonacci_unit(x), fibonacci_unit(x));
        }
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..100_000u64 {
            seen.insert(fibonacci_hash_u64(x));
        }
        assert_eq!(
            seen.len(),
            100_000,
            "Fibonacci hashing collided on small consecutive inputs"
        );
    }

    #[test]
    fn roughly_uniform_over_consecutive_inputs() {
        // Bucket the unit values of 0..n into 10 deciles; each decile should
        // receive close to n/10 values.
        let n = 100_000u64;
        let mut buckets = [0usize; 10];
        for x in 0..n {
            let u = fibonacci_unit(x);
            let b = ((u * 10.0) as usize).min(9);
            buckets[b] += 1;
        }
        let expected = n as f64 / 10.0;
        for (i, &count) in buckets.iter().enumerate() {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(deviation < 0.05, "decile {i} deviates by {deviation:.3}");
        }
    }

    #[test]
    fn digest_to_unit_extremes() {
        assert_eq!(digest_to_unit(0), 0.0);
        assert!(digest_to_unit(u64::MAX) < 1.0);
        assert!(digest_to_unit(u64::MAX) > 0.9999);
    }
}
