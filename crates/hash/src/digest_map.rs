//! Hash maps keyed by already-hashed 64-bit digests.
//!
//! Every hot map in the sketch pipeline is keyed by a `u64` that is *already*
//! a MurmurHash3 digest (or a salted Fibonacci digest derived from one).
//! Running those keys through `std`'s default SipHash-1-3 a second time buys
//! no collision resistance — the keys are not attacker-controlled and are
//! already uniformly distributed — but costs a full SipHash permutation per
//! lookup on every hot path (join probes, occurrence counting, postings).
//!
//! [`DigestHasher`] replaces that with a single Fibonacci multiply
//! ([`fibonacci_hash_u64`]): one `wrapping_mul` plus one xor-shift, which
//! both scrambles low-order input bits into the bucket-index bits and keeps
//! the top control bits well distributed. Use [`DigestHashMap`] /
//! [`DigestHashSet`] wherever the key is a digest, never for raw user input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

use crate::fibonacci::fibonacci_hash_u64;

/// A `HashMap` keyed by 64-bit digests, hashed with one Fibonacci multiply.
pub type DigestHashMap<V> = HashMap<u64, V, DigestBuildHasher>;

/// A `HashSet` of 64-bit digests, hashed with one Fibonacci multiply.
pub type DigestHashSet = HashSet<u64, DigestBuildHasher>;

/// A `HashMap` over arbitrary keys with the **deterministic** digest hasher:
/// identical insertion sequences produce identical iteration order, across
/// runs and processes. Use wherever floats are accumulated in map iteration
/// order (estimator contingency tables), so results are reproducible
/// bit-for-bit. Not DoS-hardened — never key it by untrusted input.
pub type FixedHashMap<K, V> = HashMap<K, V, DigestBuildHasher>;

/// Creates an empty [`DigestHashMap`] with at least `capacity` slots.
#[must_use]
pub fn digest_map_with_capacity<V>(capacity: usize) -> DigestHashMap<V> {
    DigestHashMap::with_capacity_and_hasher(capacity, DigestBuildHasher)
}

/// Creates an empty [`DigestHashSet`] with at least `capacity` slots.
#[must_use]
pub fn digest_set_with_capacity(capacity: usize) -> DigestHashSet {
    DigestHashSet::with_capacity_and_hasher(capacity, DigestBuildHasher)
}

/// [`BuildHasher`] producing [`DigestHasher`]s. Zero-sized and stateless, so
/// map iteration order is deterministic across runs and processes (unlike the
/// randomly seeded `RandomState`) — which keeps parallel/sequential replays
/// of the pipeline bit-for-bit comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DigestBuildHasher;

impl BuildHasher for DigestBuildHasher {
    type Hasher = DigestHasher;

    #[inline]
    fn build_hasher(&self) -> DigestHasher {
        DigestHasher { state: 0 }
    }
}

/// Hasher for keys that are already 64-bit digests.
///
/// `write_u64` (the call emitted by `u64::hash` and by newtypes over `u64`
/// such as `KeyHash`) applies one round of Fibonacci hashing. The byte-slice
/// fallback exists only so the type is a total [`Hasher`]; digest maps never
/// take that path for their intended keys.
#[derive(Debug, Clone, Copy)]
pub struct DigestHasher {
    state: u64,
}

impl Hasher for DigestHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.state = fibonacci_hash_u64(self.state ^ value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.write_u64(u64::from(value));
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 writes (e.g. a stray `&str` key); kept
        // correct rather than fast because digest maps never hit this path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.state = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut map: DigestHashMap<u32> = digest_map_with_capacity(8);
        for d in [0u64, 1, u64::MAX, 0xdead_beef, 42] {
            map.insert(d, (d % 97) as u32);
        }
        assert_eq!(map.len(), 5);
        for d in [0u64, 1, u64::MAX, 0xdead_beef, 42] {
            assert_eq!(map.get(&d), Some(&((d % 97) as u32)));
        }
        assert!(!map.contains_key(&7));
    }

    #[test]
    fn set_roundtrip() {
        let mut set = digest_set_with_capacity(4);
        assert!(set.insert(10));
        assert!(!set.insert(10));
        assert!(set.contains(&10));
        assert!(!set.contains(&11));
    }

    #[test]
    fn no_pathological_clustering_on_sequential_digests() {
        // Sequential u64 keys are the worst case for an identity hasher; the
        // Fibonacci multiply must spread them across the full 64-bit space.
        let mut map = digest_map_with_capacity(0);
        for d in 0..100_000u64 {
            map.insert(d, d);
        }
        assert_eq!(map.len(), 100_000);
        for d in (0..100_000u64).step_by(997) {
            assert_eq!(map[&d], d);
        }
    }

    #[test]
    fn iteration_order_is_deterministic_across_instances() {
        let build = |order: &[u64]| {
            let mut m = digest_map_with_capacity(16);
            for &d in order {
                m.insert(d, ());
            }
            m.keys().copied().collect::<Vec<u64>>()
        };
        let digests: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        assert_eq!(build(&digests), build(&digests));
    }

    #[test]
    fn keyhash_newtype_uses_write_u64_path() {
        let digest = 0x1234_5678_9abc_def0u64;
        let via_u64 = DigestBuildHasher.hash_one(digest);
        let via_newtype = DigestBuildHasher.hash_one(crate::KeyHash(digest));
        assert_eq!(via_u64, via_newtype);
    }
}
