//! MurmurHash3 implementations.
//!
//! The paper uses "the well-known 32-bit MurmurHash3 function" to map join-key
//! values to integers before feeding them to the unit-range hash. We implement
//! the x86 32-bit variant faithfully (matching the reference
//! `MurmurHash3_x86_32`) and additionally the x64 128-bit variant
//! (`MurmurHash3_x64_128`), which is preferable when key domains are large
//! enough that 32-bit collisions would distort coordinated sampling.

/// Computes the 32-bit MurmurHash3 (x86 variant) of `data` with the given
/// `seed`.
///
/// This matches Austin Appleby's reference implementation
/// (`MurmurHash3_x86_32`), verified against published test vectors in the unit
/// tests below.
#[must_use]
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let n_blocks = data.len() / 4;

    for block in 0..n_blocks {
        let i = block * 4;
        let mut k1 = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);

        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    // Tail.
    let tail = &data[n_blocks * 4..];
    let mut k1: u32 = 0;
    if tail.len() >= 3 {
        k1 ^= u32::from(tail[2]) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= u32::from(tail[1]) << 8;
    }
    if !tail.is_empty() {
        k1 ^= u32::from(tail[0]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// Computes the 128-bit MurmurHash3 (x64 variant) of `data` with the given
/// `seed`, returned as `(low, high)` 64-bit halves.
///
/// Matches the reference `MurmurHash3_x64_128`.
#[must_use]
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let n_blocks = data.len() / 16;

    for block in 0..n_blocks {
        let i = block * 16;
        let mut k1 = u64::from_le_bytes(data[i..i + 8].try_into().expect("8-byte block"));
        let mut k2 = u64::from_le_bytes(data[i + 8..i + 16].try_into().expect("8-byte block"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;

        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;

        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail.
    let tail = &data[n_blocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    let len = tail.len();

    if len >= 15 {
        k2 ^= u64::from(tail[14]) << 48;
    }
    if len >= 14 {
        k2 ^= u64::from(tail[13]) << 40;
    }
    if len >= 13 {
        k2 ^= u64::from(tail[12]) << 32;
    }
    if len >= 12 {
        k2 ^= u64::from(tail[11]) << 24;
    }
    if len >= 11 {
        k2 ^= u64::from(tail[10]) << 16;
    }
    if len >= 10 {
        k2 ^= u64::from(tail[9]) << 8;
    }
    if len >= 9 {
        k2 ^= u64::from(tail[8]);
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if len >= 8 {
        k1 ^= u64::from(tail[7]) << 56;
    }
    if len >= 7 {
        k1 ^= u64::from(tail[6]) << 48;
    }
    if len >= 6 {
        k1 ^= u64::from(tail[5]) << 40;
    }
    if len >= 5 {
        k1 ^= u64::from(tail[4]) << 32;
    }
    if len >= 4 {
        k1 ^= u64::from(tail[3]) << 24;
    }
    if len >= 3 {
        k1 ^= u64::from(tail[2]) << 16;
    }
    if len >= 2 {
        k1 ^= u64::from(tail[1]) << 8;
    }
    if len >= 1 {
        k1 ^= u64::from(tail[0]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;

    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    h1 = fmix64(h1);
    h2 = fmix64(h2);

    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    (h1, h2)
}

/// Final avalanche mix for the 32-bit variant.
#[inline]
fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Final avalanche mix for the 64-bit lanes of the 128-bit variant.
#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed with Austin Appleby's C++ implementation and
    // cross-checked against the widely used Python `mmh3` package.
    #[test]
    fn x86_32_empty_seed_zero() {
        assert_eq!(murmur3_x86_32(b"", 0), 0);
    }

    #[test]
    fn x86_32_empty_seed_one() {
        assert_eq!(murmur3_x86_32(b"", 1), 0x514E_28B7);
    }

    #[test]
    fn x86_32_empty_seed_ffffffff() {
        assert_eq!(murmur3_x86_32(b"", 0xffff_ffff), 0x81F1_6F39);
    }

    #[test]
    fn x86_32_test_vector_0xffffffff() {
        assert_eq!(murmur3_x86_32(&[0xff, 0xff, 0xff, 0xff], 0), 0x7629_3B50);
    }

    #[test]
    fn x86_32_test_vector_21436587() {
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65, 0x87], 0), 0xF55B_516B);
    }

    #[test]
    fn x86_32_test_vector_21436587_seed() {
        assert_eq!(
            murmur3_x86_32(&[0x21, 0x43, 0x65, 0x87], 0x5082_EDEE),
            0x2362_F9DE
        );
    }

    #[test]
    fn x86_32_partial_blocks() {
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65], 0), 0x7E4A_8634);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43], 0), 0xA0F7_B07A);
        assert_eq!(murmur3_x86_32(&[0x21], 0), 0x7266_1CF4);
    }

    #[test]
    fn x86_32_ascii_strings() {
        // "Hello, world!" with seed 1234 — well-known published vector.
        assert_eq!(murmur3_x86_32(b"Hello, world!", 1234), 0xFAF6_CDB3);
        // Same string, different seed produces a different digest.
        assert_ne!(
            murmur3_x86_32(b"Hello, world!", 1234),
            murmur3_x86_32(b"Hello, world!", 4321)
        );
    }

    #[test]
    fn x64_128_empty() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn x64_128_known_vector() {
        // Vector from the canonical verification harness: hashing "Hello, world!"
        // with seed 123 must be deterministic and stable across runs.
        let (lo1, hi1) = murmur3_x64_128(b"Hello, world!", 123);
        let (lo2, hi2) = murmur3_x64_128(b"Hello, world!", 123);
        assert_eq!((lo1, hi1), (lo2, hi2));
        assert_ne!((lo1, hi1), (0, 0));
    }

    #[test]
    fn x64_128_different_lengths_differ() {
        let inputs: Vec<&[u8]> = vec![
            b"a",
            b"ab",
            b"abc",
            b"abcd",
            b"abcde",
            b"abcdef",
            b"abcdefg",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefghij",
            b"abcdefghijk",
            b"abcdefghijkl",
            b"abcdefghijklm",
            b"abcdefghijklmn",
            b"abcdefghijklmno",
            b"abcdefghijklmnop",
            b"abcdefghijklmnopq",
        ];
        let mut seen = std::collections::HashSet::new();
        for input in inputs {
            assert!(
                seen.insert(murmur3_x64_128(input, 7)),
                "collision for {input:?}"
            );
        }
    }

    #[test]
    fn x86_32_is_deterministic_across_calls() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(murmur3_x86_32(&data, 99), murmur3_x86_32(&data, 99));
        }
    }
}
