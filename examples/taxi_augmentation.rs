//! The paper's motivating workload (Example 1): decide which external tables
//! are worth joining with a taxi-demand table by estimating, from sketches
//! alone, how much information each candidate feature carries about demand.
//!
//! Run with: `cargo run --example taxi_augmentation --release`

use joinmi::prelude::*;
use joinmi::synth::TaxiScenario;
use joinmi::table::{augment, AugmentSpec};

struct Candidate {
    label: &'static str,
    table: Table,
    key: &'static str,
    feature: &'static str,
    aggregation: Aggregation,
}

fn main() {
    // Generate a realistic-looking scenario: 90 days × 20 ZIP codes of taxi
    // trips, hourly weather, per-ZIP demographics, and an unrelated
    // restaurant-inspections table.
    let scenario = TaxiScenario::generate(90, 20, 2024);
    let taxi = &scenario.taxi;
    println!(
        "base table: {} rows of (date, zipcode, num_trips)\n",
        taxi.num_rows()
    );

    let candidates = vec![
        Candidate {
            label: "weather.rainfall (AVG by date)",
            table: scenario.weather.clone(),
            key: "date",
            feature: "rainfall",
            aggregation: Aggregation::Avg,
        },
        Candidate {
            label: "weather.temp (AVG by date)",
            table: scenario.weather.clone(),
            key: "date",
            feature: "temp",
            aggregation: Aggregation::Avg,
        },
        Candidate {
            label: "demographics.population (by zipcode)",
            table: scenario.demographics.clone(),
            key: "zipcode",
            feature: "population",
            aggregation: Aggregation::Avg,
        },
        Candidate {
            label: "inspections.score (AVG by zipcode)",
            table: scenario.inspections.clone(),
            key: "zipcode",
            feature: "score",
            aggregation: Aggregation::Avg,
        },
    ];

    let cfg = SketchConfig::new(512, 7);
    println!(
        "{:<42} {:>12} {:>12} {:>10}",
        "candidate feature", "sketch MI", "full MI", "samples"
    );
    println!("{}", "-".repeat(80));
    for cand in &candidates {
        // Join keys differ per candidate (date vs zipcode) — the left sketch
        // must be built per join key.
        let left_key = cand.key;
        let left = SketchKind::Tupsk
            .build_left(taxi, left_key, "num_trips", &cfg)
            .expect("left sketch");
        let right = SketchKind::Tupsk
            .build_right(&cand.table, cand.key, cand.feature, cand.aggregation, &cfg)
            .expect("right sketch");
        let joined = left.join(&right);
        let sketch_mi = joined.estimate_mi().map(|e| e.mi).unwrap_or(f64::NAN);

        // Exact reference: materialize the augmentation join.
        let spec = AugmentSpec::new(
            left_key,
            "num_trips",
            cand.key,
            cand.feature,
            cand.aggregation,
        );
        let full = augment(taxi, &cand.table, &spec).expect("full join");
        let xs: Vec<Value> = (0..full.table.num_rows())
            .map(|i| {
                full.table
                    .value(i, &spec.feature_column_name())
                    .expect("column")
            })
            .collect();
        let ys: Vec<Value> = (0..full.table.num_rows())
            .map(|i| full.table.value(i, "num_trips").expect("column"))
            .collect();
        let x_dtype = full
            .table
            .column(&spec.feature_column_name())
            .expect("column")
            .dtype();
        let full_mi = joinmi::sketch::JoinedSketch::from_pairs(xs, ys, x_dtype, DataType::Int)
            .estimate_mi()
            .map(|e| e.mi)
            .unwrap_or(f64::NAN);

        println!(
            "{:<42} {:>12.3} {:>12.3} {:>10}",
            cand.label,
            sketch_mi,
            full_mi,
            joined.len()
        );
    }

    println!(
        "\nThe sketch estimates track the full-join estimates while looking at only {} \
         sampled rows per table — the joins above were materialized here only to show the \
         reference values.",
        cfg.size
    );
}
