//! Micro-timing of the k-NN kernels and KSG estimator: the quick-bench
//! `knn/chebyshev_n4096` and `estimators/ksg_n4096` targets, runnable alone,
//! on the exact same workload ([`joinmi_bench::knn_correlated_pair`]) so the
//! printed medians stay comparable to `BENCH_PR4.json` and the criterion
//! `knn` group.

use std::time::Instant;

use joinmi::estimators::knn::{kth_nn_distances_chebyshev, kth_nn_distances_chebyshev_scalar};
use joinmi::estimators::ksg_mi;
use joinmi_bench::knn_correlated_pair;

fn median_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn main() {
    let (xs, ys) = knn_correlated_pair(4096);

    let scalar = median_ns(25, || kth_nn_distances_chebyshev_scalar(&xs, &ys, 3));
    let knn = median_ns(25, || kth_nn_distances_chebyshev(&xs, &ys, 3));
    let ksg = median_ns(25, || ksg_mi(&xs, &ys, 3).unwrap());
    println!("knn/chebyshev_n4096_scalar {scalar:>12.0} ns");
    println!(
        "knn/chebyshev_n4096        {knn:>12.0} ns   ({:.2}x vs scalar)",
        scalar / knn
    );
    println!("estimators/ksg_n4096       {ksg:>12.0} ns");
}
