//! Compare the MI estimators (MLE, MixedKSG, DC-KSG) against analytically
//! known mutual information, at full-data and sketch-sized samples —
//! a miniature version of the paper's Section V-B study.
//!
//! Run with: `cargo run --example estimator_comparison --release`

use joinmi::estimators::{dc_ksg_mi, discretize, mixed_ksg_mi, mle_mi, perturb_ties};
use joinmi::prelude::*;
use joinmi::table::Value;

fn to_f64(values: &[Value]) -> Vec<f64> {
    values
        .iter()
        .map(|v| v.as_f64().expect("numeric"))
        .collect()
}

fn estimate_all(xs: &[Value], ys: &[Value]) -> (f64, f64, f64) {
    let x_codes = discretize(xs);
    let y_codes = discretize(ys);
    let xf = to_f64(xs);
    let yf = to_f64(ys);
    let mle = mle_mi(&x_codes, &y_codes).unwrap_or(f64::NAN);
    let mixed = mixed_ksg_mi(&xf, &yf, 3).unwrap_or(f64::NAN);
    let dc = dc_ksg_mi(&x_codes, &perturb_ties(&yf, 1e-9, 1), 3).unwrap_or(f64::NAN);
    (mle, mixed, dc)
}

fn main() {
    println!("Trinomial benchmark (both variables are discrete counts)");
    println!(
        "{:>6} {:>10} {:>8} | {:>8} {:>10} {:>8}",
        "m", "true MI", "N", "MLE", "MixedKSG", "DC-KSG"
    );
    for (m, n) in [
        (16u32, 10_000usize),
        (64, 10_000),
        (256, 10_000),
        (256, 256),
        (1024, 256),
    ] {
        let gen = TrinomialConfig::with_random_target(m, 3.0, u64::from(m) + n as u64);
        let data = gen.generate(n, 7);
        let (mle, mixed, dc) = estimate_all(&data.xs, &data.ys);
        println!(
            "{:>6} {:>10.3} {:>8} | {:>8.3} {:>10.3} {:>8.3}",
            m, data.true_mi, n, mle, mixed, dc
        );
    }

    println!("\nCDUnif benchmark (X discrete, Y continuous; MLE not applicable)");
    println!(
        "{:>6} {:>10} {:>8} | {:>10} {:>8}",
        "m", "true MI", "N", "MixedKSG", "DC-KSG"
    );
    for (m, n) in [
        (4u32, 10_000usize),
        (32, 10_000),
        (256, 10_000),
        (32, 256),
        (256, 256),
    ] {
        let gen = CdUnifConfig::new(m);
        let data = gen.generate(n, 13);
        let xf = to_f64(&data.xs);
        let yf = to_f64(&data.ys);
        let mixed = mixed_ksg_mi(&xf, &yf, 3).unwrap_or(f64::NAN);
        let dc = dc_ksg_mi(&discretize(&data.xs), &yf, 3).unwrap_or(f64::NAN);
        println!(
            "{:>6} {:>10.3} {:>8} | {:>10.3} {:>8.3}",
            m, data.true_mi, n, mixed, dc
        );
    }

    println!(
        "\nTakeaways (matching Section V-B): with N = 10k all estimators track the truth; \
         with sketch-sized samples (N = 256) the MLE over-estimates — increasingly so as m \
         grows — while the KSG-family estimators degrade more gracefully until m approaches N."
    );
}
