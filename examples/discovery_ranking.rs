//! MI-based data discovery end-to-end: ingest a repository of candidate
//! tables, run a relationship-discovery query, inspect the ranking, and
//! materialize the top augmentation — the workflow the paper's introduction
//! motivates.
//!
//! Run with: `cargo run --example discovery_ranking --release`

use joinmi::discovery::{AugmentationPlan, RelationshipQuery, RepositoryConfig, TableRepository};
use joinmi::prelude::*;
use joinmi::synth::{OpenDataCollection, OpenDataConfig, TaxiScenario};

fn main() {
    // 1. Build a repository: the taxi scenario's candidate tables plus a
    //    simulated open-data collection as background noise.
    let scenario = TaxiScenario::generate(60, 15, 11);
    let noise = OpenDataCollection::generate(&OpenDataConfig {
        num_tables: 8,
        rows_range: (500, 1_500),
        key_universe: 1_000,
        ..OpenDataConfig::nyc_like(5)
    });

    let mut repo = TableRepository::new(RepositoryConfig {
        sketch: SketchConfig::new(1024, 11),
        ..RepositoryConfig::default()
    });
    let mut ingested = 0usize;
    for table in [
        &scenario.weather,
        &scenario.demographics,
        &scenario.inspections,
    ] {
        ingested += repo.add_table(table.clone()).expect("ingest");
    }
    for table in &noise.tables {
        ingested += repo.add_table(table.clone()).expect("ingest");
    }
    println!(
        "repository: {} tables, {} candidate (key, feature) pairs sketched offline\n",
        repo.num_tables(),
        ingested
    );

    // 2. Ask: which candidate features tell me the most about taxi demand,
    //    joining on zipcode?
    let query = RelationshipQuery::new(scenario.taxi.clone(), "zipcode", "num_trips")
        .with_top_k(8)
        .with_min_join_size(30)
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(1024, 11));
    let ranking = query.execute(&repo).expect("query");

    println!(
        "{:<55} {:>10} {:>10} {:>12}",
        "candidate", "est. MI", "samples", "estimator"
    );
    println!("{}", "-".repeat(92));
    for candidate in &ranking {
        println!(
            "{:<55} {:>10.3} {:>10} {:>12}",
            candidate.label(),
            candidate.mi,
            candidate.sketch_join_size,
            candidate.estimator
        );
    }

    // 3. Materialize the winning augmentation (the only join actually run).
    let Some(best) = ranking.first() else {
        println!("no candidate matched the query");
        return;
    };
    let plan = AugmentationPlan::new("zipcode", "num_trips", best.clone());
    let augmented = plan
        .materialize(&scenario.taxi, &repo)
        .expect("materialize");
    println!(
        "\nmaterialized `{}` -> augmented table with {} rows and {} columns (containment {:.0}%)",
        best.label(),
        augmented.table.num_rows(),
        augmented.table.num_columns(),
        100.0 * augmented.containment()
    );
}
