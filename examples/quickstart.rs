//! Quickstart: estimate the mutual information between a target column and a
//! feature column of an external table **without joining the tables**.
//!
//! Run with: `cargo run --example quickstart --release`

use joinmi::prelude::*;
use joinmi::table::{augment, AugmentSpec};

fn main() {
    // The base table the analyst is working on: daily taxi trips per ZIP code
    // (Figure 1(a) of the paper, heavily abridged).
    let zipcodes = [
        "11201", "10011", "11215", "10003", "11201", "10011", "11215", "10003",
    ];
    let trips = [136i64, 112, 94, 140, 151, 120, 88, 135];
    let taxi = Table::builder("taxi")
        .push_str_column("zipcode", zipcodes.to_vec())
        .push_int_column("num_trips", trips.to_vec())
        .build()
        .expect("valid table");

    // A candidate table discovered in an open-data portal: demographics per
    // ZIP code (Figure 1(c)).
    let demographics = Table::builder("demographics")
        .push_str_column("zipcode", vec!["11201", "10011", "11215", "10003", "10314"])
        .push_int_column("population", vec![53_041, 50_594, 37_840, 55_000, 41_000])
        .push_str_column(
            "borough",
            vec![
                "Brooklyn",
                "Manhattan",
                "Brooklyn",
                "Manhattan",
                "Staten Island",
            ],
        )
        .build()
        .expect("valid table");

    // 1. Build sketches for both sides. In a real deployment the candidate
    //    sketch is built offline, once, when the table is ingested.
    let cfg = SketchConfig::new(256, 42);
    let left = SketchKind::Tupsk
        .build_left(&taxi, "zipcode", "num_trips", &cfg)
        .expect("left sketch");
    let right = SketchKind::Tupsk
        .build_right(
            &demographics,
            "zipcode",
            "population",
            Aggregation::Avg,
            &cfg,
        )
        .expect("right sketch");

    // 2. Join the sketches (never the tables) and estimate MI.
    let joined = left.join(&right);
    let estimate = joined.estimate_mi().expect("estimate");
    println!(
        "sketch estimate:    I(num_trips ; AVG(population)) = {:.3} nats  ({} samples, {} estimator)",
        estimate.mi,
        estimate.n,
        estimate.estimator
    );

    // 3. Compare against the exact value computed on the materialized join.
    let spec = AugmentSpec::new(
        "zipcode",
        "num_trips",
        "zipcode",
        "population",
        Aggregation::Avg,
    );
    let full = augment(&taxi, &demographics, &spec).expect("full join");
    let xs: Vec<Value> = (0..full.table.num_rows())
        .map(|i| {
            full.table
                .value(i, &spec.feature_column_name())
                .expect("column")
        })
        .collect();
    let ys: Vec<Value> = (0..full.table.num_rows())
        .map(|i| full.table.value(i, "num_trips").expect("column"))
        .collect();
    let full_joined = joinmi::sketch::JoinedSketch::from_pairs(
        xs,
        ys,
        joinmi::table::DataType::Float,
        joinmi::table::DataType::Int,
    );
    let full_estimate = full_joined.estimate_mi().expect("estimate");
    println!(
        "full-join estimate: I(num_trips ; AVG(population)) = {:.3} nats  ({} samples)",
        full_estimate.mi, full_estimate.n
    );
    println!(
        "\nOn tables this small the sketch recovers the entire join, so the two values agree; \
         on large tables the sketch keeps only {} samples regardless of table size.",
        cfg.size
    );
}
